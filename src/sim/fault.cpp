#include "sccpipe/sim/fault.hpp"

#include <algorithm>
#include <cstdlib>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

SimTime RetryPolicy::backoff_after(int failed_attempts) const {
  SCCPIPE_CHECK(failed_attempts >= 1);
  // Compute in floating point with a per-step cap: the naive fixed-point
  // multiply overflows int64 nanoseconds after ~60 doublings, long before
  // a generous retry budget is spent.
  const double cap_ns = static_cast<double>(max_backoff.to_ns());
  double ns = static_cast<double>(backoff.to_ns());
  for (int i = 1; i < failed_attempts; ++i) {
    ns *= backoff_factor;
    if (ns >= cap_ns) return max_backoff;
  }
  if (ns >= cap_ns) return max_backoff;
  return SimTime::ns(static_cast<std::int64_t>(ns));
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::LinkDegrade: return "link-degrade";
    case FaultKind::LinkDown: return "link-down";
    case FaultKind::RouterDegrade: return "router-degrade";
    case FaultKind::McDegrade: return "mc-degrade";
    case FaultKind::McStall: return "mc-stall";
    case FaultKind::CoreFail: return "core-fail";
    case FaultKind::RcceDrop: return "rcce-drop";
    case FaultKind::RcceDelay: return "rcce-delay";
    case FaultKind::RcceCorrupt: return "rcce-corrupt";
    case FaultKind::HostDrop: return "host-drop";
    case FaultKind::HostDelay: return "host-delay";
    case FaultKind::HostCorrupt: return "host-corrupt";
    case FaultKind::HostReorder: return "reorder";
    case FaultKind::HostDuplicate: return "duplicate";
    case FaultKind::HostBurstDrop: return "burst-drop";
    case FaultKind::CrashAt: return "crash-at";
    case FaultKind::SlowCore: return "slow-core";
    case FaultKind::LinkLatency: return "degraded-link";
    case FaultKind::CoreStall: return "intermittent-stall";
  }
  return "?";
}

namespace {

/// "20ms" / "1.5s" / "800us" / "250ns" -> SimTime; false on junk.
bool parse_time(const std::string& v, SimTime* out) {
  char* end = nullptr;
  const double num = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || num < 0.0) return false;
  const std::string unit(end);
  if (unit == "ns") {
    *out = SimTime::ns(static_cast<std::int64_t>(num));
  } else if (unit == "us") {
    *out = SimTime::us(num);
  } else if (unit == "ms" || unit.empty()) {
    *out = SimTime::ms(num);  // bare numbers read as milliseconds
  } else if (unit == "s") {
    *out = SimTime::sec(num);
  } else {
    return false;
  }
  return true;
}

bool parse_rate(const std::string& v, double* out) {
  char* end = nullptr;
  const double num = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || num < 0.0 || num > 1.0) return false;
  *out = num;
  return true;
}

bool parse_count(const std::string& v, int* out) {
  char* end = nullptr;
  const long num = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || num < 0) return false;
  *out = static_cast<int>(num);
  return true;
}

/// "<count>:<factor>" for the degrade items; factor must be in (0, 1].
bool parse_count_factor(const std::string& v, int* count, double* factor) {
  const auto colon = v.find(':');
  if (colon == std::string::npos) return parse_count(v, count);
  if (!parse_count(v.substr(0, colon), count)) return false;
  char* end = nullptr;
  const std::string f = v.substr(colon + 1);
  const double num = std::strtod(f.c_str(), &end);
  if (end == f.c_str() || *end != '\0' || num <= 0.0 || num > 1.0) return false;
  *factor = num;
  return true;
}

/// "<rate>:<time>" for the delay items.
bool parse_rate_time(const std::string& v, double* rate, SimTime* t) {
  const auto colon = v.find(':');
  if (colon == std::string::npos) return parse_rate(v, rate);
  if (!parse_rate(v.substr(0, colon), rate)) return false;
  return parse_time(v.substr(colon + 1), t);
}

/// "<enter>:<exit>[:<loss>]" for the Gilbert–Elliott burst-loss channel.
bool parse_burst(const std::string& v, double* enter, double* exit_rate,
                 double* loss) {
  const auto c1 = v.find(':');
  if (c1 == std::string::npos) return false;
  if (!parse_rate(v.substr(0, c1), enter)) return false;
  const auto c2 = v.find(':', c1 + 1);
  if (c2 == std::string::npos) {
    return parse_rate(v.substr(c1 + 1), exit_rate);
  }
  if (!parse_rate(v.substr(c1 + 1, c2 - c1 - 1), exit_rate)) return false;
  return parse_rate(v.substr(c2 + 1), loss);
}

/// "<core>@<time>" for one planned fail-stop death; appends to the list.
bool parse_core_fail(const std::string& v, std::vector<CoreFailure>* out) {
  const auto at = v.find('@');
  if (at == std::string::npos) return false;
  CoreFailure cf;
  if (!parse_count(v.substr(0, at), &cf.core)) return false;
  if (!parse_time(v.substr(at + 1), &cf.at)) return false;
  out->push_back(cf);
  return true;
}

/// A latency *multiplier* for the fail-slow fates: anything below 1 (which
/// subsumes the nonsense values <= 0) would be a speed-up, not a fault.
bool parse_multiplier(const std::string& v, double* out) {
  char* end = nullptr;
  const double num = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || num < 1.0) return false;
  *out = num;
  return true;
}

/// "<core>:<factor>@<time>" for one planned fail-slow onset.
bool parse_slow_core(const std::string& v, std::vector<SlowCore>* out) {
  const auto colon = v.find(':');
  const auto at = v.find('@');
  if (colon == std::string::npos || at == std::string::npos || at < colon) {
    return false;
  }
  SlowCore sc;
  if (!parse_count(v.substr(0, colon), &sc.core)) return false;
  if (!parse_multiplier(v.substr(colon + 1, at - colon - 1), &sc.factor)) {
    return false;
  }
  if (!parse_time(v.substr(at + 1), &sc.at)) return false;
  out->push_back(sc);
  return true;
}

/// "<a>-<b>:<factor>@<time>" for one planned link degradation; self-links
/// (a == b) are rejected here, adjacency is checked against the topology
/// when the injector expands the plan.
bool parse_degraded_link(const std::string& v, std::vector<DegradedLink>* out) {
  const auto dash = v.find('-');
  const auto colon = v.find(':');
  const auto at = v.find('@');
  if (dash == std::string::npos || colon == std::string::npos ||
      at == std::string::npos || colon < dash || at < colon) {
    return false;
  }
  DegradedLink dl;
  if (!parse_count(v.substr(0, dash), &dl.tile_a)) return false;
  if (!parse_count(v.substr(dash + 1, colon - dash - 1), &dl.tile_b)) {
    return false;
  }
  if (dl.tile_a == dl.tile_b) return false;  // a link needs two endpoints
  if (!parse_multiplier(v.substr(colon + 1, at - colon - 1), &dl.factor)) {
    return false;
  }
  if (!parse_time(v.substr(at + 1), &dl.at)) return false;
  out->push_back(dl);
  return true;
}

/// "<core>:<period>:<duration>" for one intermittent-stall train. Duration
/// must be positive and strictly shorter than the period (a stall reaching
/// into the next period would overlap its successor), and each core may
/// carry at most one train — two trains on one core always overlap
/// eventually, so the second spec is rejected outright.
bool parse_stall(const std::string& v, std::vector<StallSpec>* out) {
  const auto c1 = v.find(':');
  if (c1 == std::string::npos) return false;
  const auto c2 = v.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  StallSpec ss;
  if (!parse_count(v.substr(0, c1), &ss.core)) return false;
  if (!parse_time(v.substr(c1 + 1, c2 - c1 - 1), &ss.period)) return false;
  if (!parse_time(v.substr(c2 + 1), &ss.duration)) return false;
  if (ss.period <= SimTime::zero() || ss.duration <= SimTime::zero()) {
    return false;
  }
  if (ss.duration >= ss.period) return false;  // overlapping stalls
  for (const StallSpec& prev : *out) {
    if (prev.core == ss.core) return false;  // second train on one core
  }
  out->push_back(ss);
  return true;
}

/// One row per plan key: how to parse the value into the plan, and whether
/// the field (once set) activates the fault layer. enabled() and parse()
/// both walk this table, so a fault kind that can be parsed is by
/// construction reachable — adding a key without an `active` predicate is
/// a deliberate, visible choice (config-only keys: seed/horizon/window).
struct PlanField {
  const char* key;
  bool (*parse)(FaultPlan& p, const std::string& v);
  bool (*active)(const FaultPlan& p);  ///< nullptr: never enables the plan
};

constexpr PlanField kPlanFields[] = {
    {"seed",
     [](FaultPlan& p, const std::string& v) {
       char* end = nullptr;
       p.seed = std::strtoull(v.c_str(), &end, 10);
       return end != v.c_str() && *end == '\0';
     },
     nullptr},
    {"horizon",
     [](FaultPlan& p, const std::string& v) {
       return parse_time(v, &p.horizon);
     },
     nullptr},
    {"window",
     [](FaultPlan& p, const std::string& v) {
       return parse_time(v, &p.window);
     },
     nullptr},
    {"rcce-drop",
     [](FaultPlan& p, const std::string& v) {
       return parse_rate(v, &p.rcce_drop_rate);
     },
     [](const FaultPlan& p) { return p.rcce_drop_rate > 0.0; }},
    {"rcce-delay",
     [](FaultPlan& p, const std::string& v) {
       return parse_rate_time(v, &p.rcce_delay_rate, &p.rcce_delay);
     },
     [](const FaultPlan& p) { return p.rcce_delay_rate > 0.0; }},
    {"rcce-corrupt",
     [](FaultPlan& p, const std::string& v) {
       return parse_rate(v, &p.rcce_corrupt_rate);
     },
     [](const FaultPlan& p) { return p.rcce_corrupt_rate > 0.0; }},
    {"host-drop",
     [](FaultPlan& p, const std::string& v) {
       return parse_rate(v, &p.host_drop_rate);
     },
     [](const FaultPlan& p) { return p.host_drop_rate > 0.0; }},
    {"host-delay",
     [](FaultPlan& p, const std::string& v) {
       return parse_rate_time(v, &p.host_delay_rate, &p.host_delay);
     },
     [](const FaultPlan& p) { return p.host_delay_rate > 0.0; }},
    {"host-corrupt",
     [](FaultPlan& p, const std::string& v) {
       return parse_rate(v, &p.host_corrupt_rate);
     },
     [](const FaultPlan& p) { return p.host_corrupt_rate > 0.0; }},
    {"reorder",
     [](FaultPlan& p, const std::string& v) {
       return parse_rate_time(v, &p.host_reorder_rate,
                              &p.host_reorder_delay);
     },
     [](const FaultPlan& p) { return p.host_reorder_rate > 0.0; }},
    {"duplicate",
     [](FaultPlan& p, const std::string& v) {
       return parse_rate_time(v, &p.host_duplicate_rate,
                              &p.host_duplicate_lag);
     },
     [](const FaultPlan& p) { return p.host_duplicate_rate > 0.0; }},
    {"burst-loss",
     [](FaultPlan& p, const std::string& v) {
       return parse_burst(v, &p.burst_enter_rate, &p.burst_exit_rate,
                          &p.burst_loss_rate);
     },
     [](const FaultPlan& p) { return p.burst_enter_rate > 0.0; }},
    {"link-degrade",
     [](FaultPlan& p, const std::string& v) {
       return parse_count_factor(v, &p.link_degrade_count,
                                 &p.link_degrade_factor);
     },
     [](const FaultPlan& p) { return p.link_degrade_count > 0; }},
    {"link-down",
     [](FaultPlan& p, const std::string& v) {
       return parse_count(v, &p.link_down_count);
     },
     [](const FaultPlan& p) { return p.link_down_count > 0; }},
    {"router-degrade",
     [](FaultPlan& p, const std::string& v) {
       return parse_count_factor(v, &p.router_degrade_count,
                                 &p.router_degrade_factor);
     },
     [](const FaultPlan& p) { return p.router_degrade_count > 0; }},
    {"mc-degrade",
     [](FaultPlan& p, const std::string& v) {
       return parse_count_factor(v, &p.mc_degrade_count,
                                 &p.mc_degrade_factor);
     },
     [](const FaultPlan& p) { return p.mc_degrade_count > 0; }},
    {"mc-stall",
     [](FaultPlan& p, const std::string& v) {
       return parse_count(v, &p.mc_stall_count);
     },
     [](const FaultPlan& p) { return p.mc_stall_count > 0; }},
    {"core-fail",
     [](FaultPlan& p, const std::string& v) {
       return parse_core_fail(v, &p.core_failures);
     },
     [](const FaultPlan& p) { return !p.core_failures.empty(); }},
    // Fail-slow fates. A factor of exactly 1.0 is a legal spelling of "no
    // fault": it never activates the layer and never enters the schedule,
    // so slow-core=<c>:1.0@<t> is byte-identical to omitting the key (the
    // metamorphic property tests/gray_failure_test asserts).
    {"slow-core",
     [](FaultPlan& p, const std::string& v) {
       return parse_slow_core(v, &p.slow_cores);
     },
     [](const FaultPlan& p) {
       for (const SlowCore& sc : p.slow_cores) {
         if (sc.factor != 1.0) return true;
       }
       return false;
     }},
    {"degraded-link",
     [](FaultPlan& p, const std::string& v) {
       return parse_degraded_link(v, &p.degraded_links);
     },
     [](const FaultPlan& p) {
       for (const DegradedLink& dl : p.degraded_links) {
         if (dl.factor != 1.0) return true;
       }
       return false;
     }},
    {"intermittent-stall",
     [](FaultPlan& p, const std::string& v) {
       return parse_stall(v, &p.stalls);
     },
     [](const FaultPlan& p) { return !p.stalls.empty(); }},
    // Config-only on purpose (like seed/horizon/window): a planned process
    // crash is executed by the run driver, not simulated — it must not
    // attach the fault layer, or a crash-only plan would stop being
    // byte-identical to a run with no fault layer at all (the property the
    // crash/resume determinism tests assert).
    {"crash-at",
     [](FaultPlan& p, const std::string& v) {
       SimTime t = SimTime::zero();
       if (!parse_time(v, &t) || t <= SimTime::zero()) return false;
       p.crashes.push_back(t);
       return true;
     },
     nullptr},
};

}  // namespace

bool FaultPlan::enabled() const {
  for (const PlanField& f : kPlanFields) {
    if (f.active != nullptr && f.active(*this)) return true;
  }
  return false;
}

Status FaultPlan::parse(const std::string& text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    const std::string item = text.substr(pos, semi - pos);
    pos = semi + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      return Status(StatusCode::InvalidArgument,
                    "fault-plan item '" + item + "' lacks '='");
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    const PlanField* field = nullptr;
    for (const PlanField& f : kPlanFields) {
      if (key == f.key) {
        field = &f;
        break;
      }
    }
    if (field == nullptr) {
      return Status(StatusCode::InvalidArgument,
                    "unknown fault-plan key '" + key + "'");
    }
    if (!field->parse(*this, val)) {
      return Status(StatusCode::InvalidArgument,
                    "bad value for fault-plan key '" + key + "'");
    }
  }
  return Status();
}

FaultInjector::FaultInjector(const FaultPlan& plan, int link_count,
                             int tile_count, int mc_count, int mesh_width)
    : plan_(plan),
      enabled_(plan.enabled()),
      rcce_rng_(SplitMix64{plan.seed ^ 0x72636365ULL}.next()),
      host_rng_(SplitMix64{plan.seed ^ 0x686f7374ULL}.next()) {
  if (!enabled_) return;
  SCCPIPE_CHECK(link_count > 0 && tile_count > 0 && mc_count > 0);
  SCCPIPE_CHECK(plan_.horizon > SimTime::zero());
  SCCPIPE_CHECK(plan_.window > SimTime::zero());

  // Window faults draw from their own stream so that changing a message
  // rate never reshuffles the schedule (and vice versa).
  Rng sched(SplitMix64{plan.seed ^ 0x77696e646f77ULL}.next());
  const auto window_start = [&] {
    const double span =
        std::max(0.0, (plan_.horizon - plan_.window).to_sec());
    return SimTime::sec(sched.uniform(0.0, span));
  };
  const auto add = [&](FaultKind kind, int count, int targets,
                       double factor) {
    for (int i = 0; i < count; ++i) {
      FaultEvent ev;
      ev.kind = kind;
      ev.target = static_cast<int>(sched.below(
          static_cast<std::uint64_t>(targets)));
      ev.start = window_start();
      ev.end = ev.start + plan_.window;
      ev.factor = factor;
      schedule_.push_back(ev);
    }
  };
  add(FaultKind::LinkDegrade, plan_.link_degrade_count, link_count,
      plan_.link_degrade_factor);
  add(FaultKind::LinkDown, plan_.link_down_count, link_count, 1.0);
  add(FaultKind::RouterDegrade, plan_.router_degrade_count, tile_count,
      plan_.router_degrade_factor);
  add(FaultKind::McDegrade, plan_.mc_degrade_count, mc_count,
      plan_.mc_degrade_factor);
  add(FaultKind::McStall, plan_.mc_stall_count, mc_count, 1.0);
  // Core failures come straight from the plan (no RNG): a fail-stop death
  // is a point event that never ends.
  for (const CoreFailure& cf : plan_.core_failures) {
    SCCPIPE_CHECK(cf.core >= 0);
    FaultEvent ev;
    ev.kind = FaultKind::CoreFail;
    ev.target = cf.core;
    ev.start = ev.end = cf.at;
    schedule_.push_back(ev);
  }
  // Fail-slow fates are likewise pure plan expansions — no RNG draw, so
  // composing them with any message-fate plan perturbs no stream. Events
  // store the *inverse* multiplier so the shared slowdown() helper (which
  // returns 1/min-factor) recovers the plan's multiplier exactly.
  for (const SlowCore& sc : plan_.slow_cores) {
    if (sc.factor == 1.0) continue;  // legal no-op spelling, see kPlanFields
    FaultEvent ev;
    ev.kind = FaultKind::SlowCore;
    ev.target = sc.core;
    ev.start = sc.at;
    ev.end = SimTime::max();  // fail-slow never heals on its own
    ev.factor = 1.0 / sc.factor;
    schedule_.push_back(ev);
  }
  for (const DegradedLink& dl : plan_.degraded_links) {
    if (dl.factor == 1.0) continue;
    SCCPIPE_CHECK_MSG(mesh_width > 0,
                      "degraded-link plans need the mesh width");
    SCCPIPE_CHECK_MSG(dl.tile_a >= 0 && dl.tile_a < tile_count &&
                          dl.tile_b >= 0 && dl.tile_b < tile_count,
                      "degraded-link " << dl.tile_a << "-" << dl.tile_b
                                       << " names a tile off the mesh");
    const int ax = dl.tile_a % mesh_width, ay = dl.tile_a / mesh_width;
    const int bx = dl.tile_b % mesh_width, by = dl.tile_b / mesh_width;
    SCCPIPE_CHECK_MSG(std::abs(ax - bx) + std::abs(ay - by) == 1,
                      "degraded-link " << dl.tile_a << "-" << dl.tile_b
                                       << " is not a mesh link (tiles not "
                                          "adjacent)");
    // Degrade both directed halves of the physical link. Direction codes
    // match noc/topology.hpp (East=0, West=1, North=2, South=3) and the
    // mesh's dense link index convention tile*4 + direction.
    const auto dir_from = [&](int fx, int fy, int tx, int ty) {
      if (tx == fx + 1) return 0;  // East
      if (tx == fx - 1) return 1;  // West
      if (ty == fy - 1) return 2;  // North
      return 3;                    // South
    };
    const int pair[2][2] = {{dl.tile_a, dir_from(ax, ay, bx, by)},
                            {dl.tile_b, dir_from(bx, by, ax, ay)}};
    for (const auto& half : pair) {
      FaultEvent ev;
      ev.kind = FaultKind::LinkLatency;
      ev.target = half[0] * 4 + half[1];
      SCCPIPE_CHECK(ev.target >= 0 && ev.target < link_count);
      ev.start = dl.at;
      ev.end = SimTime::max();
      ev.factor = 1.0 / dl.factor;
      schedule_.push_back(ev);
    }
  }
  for (const StallSpec& ss : plan_.stalls) {
    SCCPIPE_CHECK(ss.core >= 0);
    // One window at the top of every period across the horizon; eager
    // expansion keeps every query a pure scan of an immutable schedule.
    for (SimTime t = SimTime::zero(); t < plan_.horizon; t = t + ss.period) {
      FaultEvent ev;
      ev.kind = FaultKind::CoreStall;
      ev.target = ss.core;
      ev.start = t;
      ev.end = t + ss.duration;
      schedule_.push_back(ev);
    }
  }
  // stable_sort: two events agreeing on (start, target, kind) — e.g. a
  // duplicated CoreFail entry in the plan — keep their generation order, so
  // the schedule (and everything replayed from it) is fully deterministic
  // rather than depending on std::sort's tie behaviour.
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.start != b.start) return a.start < b.start;
                     if (a.target != b.target) return a.target < b.target;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
}

SimTime FaultInjector::available_after(FaultKind kind, int target,
                                       SimTime at) const {
  SimTime t = at;
  // Chained outages are rare and the schedule is tiny; a rescan after each
  // adjustment handles overlapping windows exactly.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const FaultEvent& ev : schedule_) {
      if (ev.kind == kind && ev.target == target && ev.start <= t &&
          t < ev.end) {
        t = ev.end;
        moved = true;
      }
    }
  }
  return t;
}

double FaultInjector::slowdown(FaultKind kind, int target, SimTime at) const {
  double factor = 1.0;
  for (const FaultEvent& ev : schedule_) {
    if (ev.kind == kind && ev.target == target && ev.start <= at &&
        at < ev.end) {
      factor = std::min(factor, ev.factor);
    }
  }
  return 1.0 / factor;
}

SimTime FaultInjector::link_available(int link_index, SimTime at) const {
  if (!enabled_) return at;
  return available_after(FaultKind::LinkDown, link_index, at);
}

double FaultInjector::link_slowdown(int link_index, SimTime at) const {
  if (!enabled_) return 1.0;
  return slowdown(FaultKind::LinkDegrade, link_index, at);
}

double FaultInjector::router_slowdown(int tile, SimTime at) const {
  if (!enabled_) return 1.0;
  return slowdown(FaultKind::RouterDegrade, tile, at);
}

double FaultInjector::link_latency_factor(int link_index, SimTime at) const {
  if (!enabled_) return 1.0;
  return slowdown(FaultKind::LinkLatency, link_index, at);
}

SimTime FaultInjector::mc_available(int mc, SimTime at) const {
  if (!enabled_) return at;
  return available_after(FaultKind::McStall, mc, at);
}

double FaultInjector::mc_slowdown(int mc, SimTime at) const {
  if (!enabled_) return 1.0;
  return slowdown(FaultKind::McDegrade, mc, at);
}

bool FaultInjector::core_failed(int core, SimTime at) const {
  if (!enabled_) return false;
  for (const CoreFailure& cf : plan_.core_failures) {
    if (cf.core == core && cf.at <= at) return true;
  }
  return false;
}

SimTime FaultInjector::core_fail_time(int core) const {
  SimTime t = SimTime::max();
  for (const CoreFailure& cf : plan_.core_failures) {
    if (cf.core == core) t = std::min(t, cf.at);
  }
  return t;
}

double FaultInjector::core_slowdown(int core, SimTime at) const {
  if (!enabled_) return 1.0;
  return slowdown(FaultKind::SlowCore, core, at);
}

SimTime FaultInjector::core_available(int core, SimTime at) const {
  if (!enabled_) return at;
  return available_after(FaultKind::CoreStall, core, at);
}

bool FaultInjector::has_gray_faults() const {
  for (const SlowCore& sc : plan_.slow_cores) {
    if (sc.factor != 1.0) return true;
  }
  for (const DegradedLink& dl : plan_.degraded_links) {
    if (dl.factor != 1.0) return true;
  }
  return !plan_.stalls.empty();
}

MessageFate FaultInjector::rcce_message_fate(SimTime at, int from, int to,
                                             SimTime* extra_delay) {
  *extra_delay = SimTime::zero();
  if (!enabled_) return MessageFate::Deliver;
  // One draw per decision point keeps the stream aligned across runs; each
  // draw is rate-gated, so a plan that never uses a fate class consumes no
  // randomness for it and older plans keep their exact streams.
  if (plan_.rcce_drop_rate > 0.0 &&
      rcce_rng_.uniform() < plan_.rcce_drop_rate) {
    ++rcce_drops_;
    FaultEvent ev;
    ev.kind = FaultKind::RcceDrop;
    ev.start = ev.end = at;
    ev.target = from * 1000 + to;  // compact pair id for the trace
    trace_.push_back(ev);
    return MessageFate::Drop;
  }
  MessageFate fate = MessageFate::Deliver;
  if (plan_.rcce_corrupt_rate > 0.0 &&
      rcce_rng_.uniform() < plan_.rcce_corrupt_rate) {
    ++rcce_corrupts_;
    FaultEvent ev;
    ev.kind = FaultKind::RcceCorrupt;
    ev.start = ev.end = at;
    ev.target = from * 1000 + to;
    trace_.push_back(ev);
    fate = MessageFate::Corrupt;
  }
  if (plan_.rcce_delay_rate > 0.0 &&
      rcce_rng_.uniform() < plan_.rcce_delay_rate) {
    ++rcce_delays_;
    FaultEvent ev;
    ev.kind = FaultKind::RcceDelay;
    ev.start = ev.end = at;
    ev.target = from * 1000 + to;
    ev.extra = SimTime::sec(rcce_rng_.uniform() * plan_.rcce_delay.to_sec());
    trace_.push_back(ev);
    *extra_delay = ev.extra;
  }
  return fate;
}

MessageFate FaultInjector::host_message_fate(SimTime at,
                                             SimTime* extra_delay) {
  // The stop-and-wait transport sees reorder displacement as plain extra
  // delay (one message in flight at a time, so nothing overtakes) and
  // cannot represent duplicates; the full decision is still drawn and
  // traced so the same plan yields the same fault stream either way.
  const DatagramFate df = host_datagram_fate(at);
  *extra_delay = df.extra_delay;
  return df.fate;
}

DatagramFate FaultInjector::host_datagram_fate(SimTime at) {
  DatagramFate df;
  if (!enabled_) return df;
  // Draw order (burst step, drop, corrupt, delay, reorder, duplicate) is
  // part of the determinism contract: every draw is rate-gated, so a plan
  // that leaves a fate class at zero consumes no randomness for it and
  // pre-existing plans keep their exact streams.
  if (plan_.burst_enter_rate > 0.0) {
    // Gilbert–Elliott channel: one state-transition draw per datagram,
    // plus a loss draw while in the bad state.
    const double flip =
        burst_bad_ ? plan_.burst_exit_rate : plan_.burst_enter_rate;
    if (host_rng_.uniform() < flip) burst_bad_ = !burst_bad_;
    if (burst_bad_ && host_rng_.uniform() < plan_.burst_loss_rate) {
      ++host_burst_drops_;
      FaultEvent ev;
      ev.kind = FaultKind::HostBurstDrop;
      ev.start = ev.end = at;
      trace_.push_back(ev);
      df.fate = MessageFate::Drop;
      return df;
    }
  }
  if (plan_.host_drop_rate > 0.0 &&
      host_rng_.uniform() < plan_.host_drop_rate) {
    ++host_drops_;
    FaultEvent ev;
    ev.kind = FaultKind::HostDrop;
    ev.start = ev.end = at;
    trace_.push_back(ev);
    df.fate = MessageFate::Drop;
    return df;
  }
  if (plan_.host_corrupt_rate > 0.0 &&
      host_rng_.uniform() < plan_.host_corrupt_rate) {
    ++host_corrupts_;
    FaultEvent ev;
    ev.kind = FaultKind::HostCorrupt;
    ev.start = ev.end = at;
    trace_.push_back(ev);
    df.fate = MessageFate::Corrupt;
  }
  if (plan_.host_delay_rate > 0.0 &&
      host_rng_.uniform() < plan_.host_delay_rate) {
    ++host_delays_;
    FaultEvent ev;
    ev.kind = FaultKind::HostDelay;
    ev.start = ev.end = at;
    ev.extra = SimTime::sec(host_rng_.uniform() * plan_.host_delay.to_sec());
    trace_.push_back(ev);
    df.extra_delay = df.extra_delay + ev.extra;
  }
  if (plan_.host_reorder_rate > 0.0 &&
      host_rng_.uniform() < plan_.host_reorder_rate) {
    ++host_reorders_;
    FaultEvent ev;
    ev.kind = FaultKind::HostReorder;
    ev.start = ev.end = at;
    ev.extra = SimTime::sec(host_rng_.uniform() *
                            plan_.host_reorder_delay.to_sec());
    trace_.push_back(ev);
    df.extra_delay = df.extra_delay + ev.extra;
  }
  if (plan_.host_duplicate_rate > 0.0 &&
      host_rng_.uniform() < plan_.host_duplicate_rate) {
    ++host_duplicates_;
    FaultEvent ev;
    ev.kind = FaultKind::HostDuplicate;
    ev.start = ev.end = at;
    ev.extra = SimTime::sec(host_rng_.uniform() *
                            plan_.host_duplicate_lag.to_sec());
    trace_.push_back(ev);
    df.duplicate = true;
    df.duplicate_lag = ev.extra;
  }
  return df;
}

std::uint64_t FaultInjector::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_event = [&](const FaultEvent& ev) {
    mix(static_cast<std::uint64_t>(ev.kind));
    mix(static_cast<std::uint64_t>(ev.start.to_ns()));
    mix(static_cast<std::uint64_t>(ev.end.to_ns()));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(ev.target)));
    mix(static_cast<std::uint64_t>(ev.factor * 1e9));
    mix(static_cast<std::uint64_t>(ev.extra.to_ns()));
  };
  for (const FaultEvent& ev : schedule_) mix_event(ev);
  for (const FaultEvent& ev : trace_) mix_event(ev);
  return h;
}

void FaultInjector::save_state(snapshot::Writer& w) const {
  for (const std::uint64_t s : rcce_rng_.state()) w.u64(s);
  for (const std::uint64_t s : host_rng_.state()) w.u64(s);
  w.u64(rcce_drops_);
  w.u64(rcce_delays_);
  w.u64(rcce_corrupts_);
  w.u64(host_drops_);
  w.u64(host_delays_);
  w.u64(host_corrupts_);
  w.u64(host_reorders_);
  w.u64(host_duplicates_);
  w.u64(host_burst_drops_);
  w.u32(burst_bad_ ? 1 : 0);
  w.u64(trace_.size());
  for (const FaultEvent& ev : trace_) {
    w.u32(static_cast<std::uint32_t>(ev.kind));
    w.i64(ev.start.to_ns());
    w.i64(ev.end.to_ns());
    w.i64(ev.target);
    w.f64(ev.factor);
    w.i64(ev.extra.to_ns());
  }
}

Status FaultInjector::restore_state(snapshot::Reader& r) {
  std::array<std::uint64_t, 4> rcce_state{};
  std::array<std::uint64_t, 4> host_state{};
  for (std::uint64_t& s : rcce_state) {
    if (Status st = r.u64(&s); !st.ok()) return st;
  }
  for (std::uint64_t& s : host_state) {
    if (Status st = r.u64(&s); !st.ok()) return st;
  }
  std::uint64_t counters[9] = {};
  for (std::uint64_t& c : counters) {
    if (Status st = r.u64(&c); !st.ok()) return st;
  }
  std::uint32_t burst = 0;
  if (Status st = r.u32(&burst); !st.ok()) return st;
  std::uint64_t trace_len = 0;
  if (Status st = r.u64(&trace_len); !st.ok()) return st;
  std::vector<FaultEvent> trace;
  trace.reserve(static_cast<std::size_t>(trace_len));
  for (std::uint64_t i = 0; i < trace_len; ++i) {
    std::uint32_t kind = 0;
    std::int64_t start_ns = 0, end_ns = 0, target = 0, extra_ns = 0;
    double factor = 1.0;
    if (Status st = r.u32(&kind); !st.ok()) return st;
    if (Status st = r.i64(&start_ns); !st.ok()) return st;
    if (Status st = r.i64(&end_ns); !st.ok()) return st;
    if (Status st = r.i64(&target); !st.ok()) return st;
    if (Status st = r.f64(&factor); !st.ok()) return st;
    if (Status st = r.i64(&extra_ns); !st.ok()) return st;
    FaultEvent ev;
    ev.kind = static_cast<FaultKind>(kind);
    ev.start = SimTime::ns(start_ns);
    ev.end = SimTime::ns(end_ns);
    ev.target = static_cast<int>(target);
    ev.factor = factor;
    ev.extra = SimTime::ns(extra_ns);
    trace.push_back(ev);
  }
  // All fields parsed; only now mutate (a truncated snapshot must not leave
  // the injector half-restored).
  rcce_rng_.set_state(rcce_state);
  host_rng_.set_state(host_state);
  rcce_drops_ = counters[0];
  rcce_delays_ = counters[1];
  rcce_corrupts_ = counters[2];
  host_drops_ = counters[3];
  host_delays_ = counters[4];
  host_corrupts_ = counters[5];
  host_reorders_ = counters[6];
  host_duplicates_ = counters[7];
  host_burst_drops_ = counters[8];
  burst_bad_ = burst != 0;
  trace_ = std::move(trace);
  return Status();
}

}  // namespace sccpipe
