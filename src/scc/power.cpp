#include "sccpipe/scc/power.hpp"

namespace sccpipe {

double PowerModel::core_dynamic_watts(const OperatingPoint& op) const {
  const double f_ratio = static_cast<double>(op.mhz) / cfg_.ref_mhz;
  const double v_ratio = op.volts / cfg_.ref_volts;
  return cfg_.core_dynamic_watts_ref * f_ratio * v_ratio * v_ratio;
}

double PowerModel::tile_static_watts(double volts) const {
  if (volts > cfg_.ref_volts) return cfg_.tile_static_watts_high;
  if (volts < cfg_.ref_volts) return cfg_.tile_static_watts_low;
  return 0.0;
}

void PowerMeter::set_power(double watts) { trace_.record(sim_.now(), watts); }

double PowerMeter::current_watts() const { return trace_.at(sim_.now()); }

double PowerMeter::energy_joules(SimTime from, SimTime to) const {
  return trace_.integrate(from, to);
}

double PowerMeter::mean_watts(SimTime from, SimTime to) const {
  if (from == to) return trace_.at(from);
  return trace_.integrate(from, to) / (to - from).to_sec();
}

}  // namespace sccpipe
