#include "sccpipe/scc/chip.hpp"

#include <algorithm>
#include <memory>

#include "sccpipe/noc/fabric.hpp"
#include "sccpipe/sim/fault.hpp"

namespace sccpipe {

ChipConfig ChipConfig::scc() { return ChipConfig{}; }

ChipConfig ChipConfig::mogon_node() {
  ChipConfig cfg;
  // 64 cores as 32 tiles in an 8x4 grid; the topology is a formality — the
  // links and memory are fast enough that they never bind.
  cfg.mesh_layout.width = 8;
  cfg.mesh_layout.height = 4;
  cfg.mesh_layout.mc_positions = {{0, 0}, {7, 0}, {0, 2}, {7, 2}};
  cfg.mesh_timing.router_latency = SimTime::ns(2);
  cfg.mesh_timing.link_bandwidth_bytes_per_sec = 4.0e10;
  cfg.memory.mc_bandwidth_bytes_per_sec = 2.0e10;
  cfg.memory.base_line_latency = SimTime::ns(8);  // big L3 + prefetchers
  cfg.memory.per_hop_latency = SimTime::ns(0);
  cfg.memory.latency_contention_coeff = 0.02;
  cfg.default_mhz = 1066;  // table level closest in spirit; speed comes from
                           // ipc_factor so the 2.1 GHz clock is folded in.
  cfg.ipc_factor = 4.4;    // 2.1 GHz / 1066 MHz * ~2.2 IPC vs P54C
  cfg.copy_rate_bytes_per_sec = 8.5e9;
  cfg.render_cycles_scale = 0.4;
  // Power: not reported for the cluster in the paper; rough server figures.
  cfg.power.chip_idle_watts = 120.0;
  cfg.power.uncore_active_watts = 30.0;
  cfg.power.core_dynamic_watts_ref = 2.5;
  cfg.power.ref_mhz = 1066;
  return cfg;
}

SccChip::SccChip(Simulator& sim, ChipConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      topo_(cfg.mesh_layout),
      mesh_(topo_, cfg.mesh_timing),
      mem_(sim, topo_, mesh_, cfg.memory),
      power_model_(cfg.power),
      meter_(sim) {
  SCCPIPE_CHECK_MSG(dvfs_.allowed(cfg_.default_mhz),
                    "default frequency " << cfg_.default_mhz);
  tile_mhz_.assign(static_cast<std::size_t>(topo_.tile_count()),
                   cfg_.default_mhz);
  tile_mhz_live_ = tile_mhz_;
  tile_points_.assign(static_cast<std::size_t>(topo_.tile_count()),
                      dvfs_.point_for(cfg_.default_mhz));
  cores_.resize(static_cast<std::size_t>(topo_.core_count()));
  refresh_power();
}

int SccChip::voltage_domain_of(TileId tile) const {
  SCCPIPE_CHECK(tile >= 0 && tile < topo_.tile_count());
  const TileCoord c = topo_.coord_of(tile);
  const int domains_x = (topo_.layout().width + 1) / 2;
  return (c.y / 2) * domains_x + (c.x / 2);
}

void SccChip::set_tile_frequency(TileId tile, int mhz) {
  SCCPIPE_CHECK(tile >= 0 && tile < topo_.tile_count());
  SCCPIPE_CHECK(dvfs_.allowed(mhz));
  // Requested frequency, voltage domains and the power bill are host-side
  // bookkeeping and update synchronously. The tile's live clock is owned
  // by the tile's region: a mid-run DVFS command crosses the mesh as a
  // located post before compute() on that tile sees the new speed.
  tile_mhz_[static_cast<std::size_t>(tile)] = mhz;
  refresh_voltages();
  refresh_power();
  if (fabric_ != nullptr && RegionFabric::in_run()) {
    fabric_->hop(tile, [this, tile, mhz] {
      tile_mhz_live_[static_cast<std::size_t>(tile)] = mhz;
    });
  } else {
    tile_mhz_live_[static_cast<std::size_t>(tile)] = mhz;
  }
}

void SccChip::attach_fabric(RegionFabric* fabric) {
  fabric_ = fabric;
  mem_.attach_fabric(fabric);
}

void SccChip::refresh_voltages() {
  // Every tile runs at its requested frequency; its voltage is either its
  // own requirement (PerTile) or the maximum requirement in its 2x2
  // domain (the SCC's real supply granularity).
  for (TileId t = 0; t < topo_.tile_count(); ++t) {
    const auto ti = static_cast<std::size_t>(t);
    OperatingPoint p = dvfs_.point_for(tile_mhz_[ti]);
    if (cfg_.voltage_granularity == VoltageGranularity::PerQuadTileDomain) {
      const int dom = voltage_domain_of(t);
      for (TileId o = 0; o < topo_.tile_count(); ++o) {
        if (voltage_domain_of(o) != dom) continue;
        p.volts = std::max(
            p.volts,
            dvfs_.point_for(tile_mhz_[static_cast<std::size_t>(o)]).volts);
      }
    }
    tile_points_[ti] = p;
  }
}

void SccChip::set_core_frequency(CoreId core, int mhz) {
  set_tile_frequency(topo_.tile_of(core), mhz);
}

OperatingPoint SccChip::operating_point(CoreId core) const {
  return tile_points_[static_cast<std::size_t>(topo_.tile_of(core))];
}

double SccChip::frequency_hz(CoreId core) const {
  return operating_point(core).mhz * 1e6;
}

double SccChip::effective_hz(CoreId core) const {
  return frequency_hz(core) * cfg_.ipc_factor;
}

double SccChip::effective_hz_live(CoreId core) const {
  const auto tile = static_cast<std::size_t>(topo_.tile_of(core));
  return tile_mhz_live_[tile] * 1e6 * cfg_.ipc_factor;
}

double SccChip::copy_rate(CoreId core) const {
  SCCPIPE_CHECK(topo_.valid_core(core));
  return cfg_.copy_rate_bytes_per_sec;
}

void SccChip::allocate_core(CoreId core) {
  SCCPIPE_CHECK(topo_.valid_core(core));
  CoreState& st = cores_[static_cast<std::size_t>(core)];
  SCCPIPE_CHECK_MSG(!st.allocated, "core " << core << " already allocated");
  st.allocated = true;
  refresh_power();
}

void SccChip::release_core(CoreId core) {
  SCCPIPE_CHECK(topo_.valid_core(core));
  CoreState& st = cores_[static_cast<std::size_t>(core)];
  SCCPIPE_CHECK(st.allocated);
  if (st.busy) set_core_busy(core, false);
  st.allocated = false;
  refresh_power();
}

bool SccChip::allocated(CoreId core) const {
  SCCPIPE_CHECK(topo_.valid_core(core));
  return cores_[static_cast<std::size_t>(core)].allocated;
}

int SccChip::allocated_count() const {
  int n = 0;
  for (const CoreState& st : cores_) n += st.allocated ? 1 : 0;
  return n;
}

void SccChip::set_core_busy(CoreId core, bool busy) {
  set_core_busy_at(core, busy, sim_.now());
}

void SccChip::set_core_busy_at(CoreId core, bool busy, SimTime now) {
  SCCPIPE_CHECK(topo_.valid_core(core));
  CoreState& st = cores_[static_cast<std::size_t>(core)];
  if (st.busy == busy) return;
  if (busy) {
    st.busy_since = now;
  } else {
    st.busy_total += now - st.busy_since;
  }
  st.busy = busy;
}

SimTime SccChip::core_busy_time(CoreId core) const {
  SCCPIPE_CHECK(topo_.valid_core(core));
  const CoreState& st = cores_[static_cast<std::size_t>(core)];
  SimTime t = st.busy_total;
  if (st.busy) t += sim_.now() - st.busy_since;
  return t;
}

bool SccChip::core_dead(CoreId core) const {
  return core_dead_at(core, sim_.now());
}

bool SccChip::core_dead_at(CoreId core, SimTime now) const {
  return fault_ != nullptr && fault_->core_failed(core, now);
}

SimTime SccChip::gray_adjusted(CoreId core, SimTime dur, SimTime now) const {
  if (fault_ == nullptr) return dur;
  // An intermittent stall freezes the core: work arriving mid-window waits
  // the window out (deferred, never dropped), and the core reads as busy
  // for the wait — a frozen core with queued work is occupied, not idle.
  // The slow-core multiplier is sampled at the actual start instant.
  const SimTime start = fault_->core_available(core, now);
  return (start - now) + dur * fault_->core_slowdown(core, start);
}

void SccChip::compute(CoreId core, double ref_cycles,
                      StageCallback on_done) {
  SCCPIPE_CHECK(ref_cycles >= 0.0);
  SCCPIPE_CHECK(on_done != nullptr);
  if (fabric_ != nullptr) {
    // Region-native chain: hop to the core's tile, run the work on the
    // tile's regional clock, hop back to the caller's site. The fail-stop
    // check happens *at the tile* (arrival time is partition-independent),
    // and the duration reads the tile-owned live clock.
    const TileId ret = fabric_->current_site();
    const TileId ct = topo_.tile_of(core);
    fabric_->hop(ct, [this, core, ref_cycles, ret,
                      cb = std::move(on_done)]() mutable {
      if (core_dead_at(core, fabric_->now())) return;
      const SimTime dur = gray_adjusted(
          core, SimTime::sec(ref_cycles / effective_hz_live(core)),
          fabric_->now());
      set_core_busy_at(core, true, fabric_->now());
      fabric_->after(dur, [this, core, ret, cb = std::move(cb)]() mutable {
        set_core_busy_at(core, false, fabric_->now());
        fabric_->hop(ret, [cb = std::move(cb)]() mutable { cb(); });
      });
    });
    return;
  }
  if (core_dead(core)) return;  // fail-stop: nothing starts, nothing returns
  const SimTime dur = gray_adjusted(
      core, SimTime::sec(ref_cycles / effective_hz(core)), sim_.now());
  set_core_busy(core, true);
  sim_.schedule_after(dur, [this, core, cb = std::move(on_done)]() mutable {
    set_core_busy(core, false);
    cb();
  });
}

void SccChip::memory_walk(CoreId core, double line_accesses,
                          StageCallback on_done) {
  SCCPIPE_CHECK(on_done != nullptr);
  // Split the walk into segments, re-sampling the controller load at each
  // boundary: a long traversal sees the average congestion over its
  // lifetime, not whatever happened to be in flight the instant it began.
  constexpr int kSegments = 4;
  if (fabric_ != nullptr) {
    // Region-native chain: busy accounting at the core's tile, then the
    // dependent-miss segments at the home controller's tile — the walker
    // registration and load sampling touch MC-region-owned state, so they
    // must execute there.
    const TileId ret = fabric_->current_site();
    const TileId ct = topo_.tile_of(core);
    fabric_->hop(ct, [this, core, line_accesses, ret,
                      cb = std::move(on_done)]() mutable {
      if (core_dead_at(core, fabric_->now())) return;
      set_core_busy_at(core, true, fabric_->now());
      const TileId mct = topo_.tile_at(topo_.mc_position(topo_.home_mc(core)));
      fabric_->hop(mct, [this, core, line_accesses, ret,
                         cb = std::move(cb)]() mutable {
        mem_.register_latency_stream(core);
        fabric_walk_step(WalkState{core, line_accesses / kSegments, kSegments,
                                   std::move(cb)},
                         ret);
      });
    });
    return;
  }
  if (core_dead(core)) return;
  mem_.register_latency_stream(core);
  set_core_busy(core, true);
  walk_step(WalkState{core, line_accesses / kSegments, kSegments,
                      std::move(on_done)});
}

void SccChip::walk_step(WalkState st) {
  if (st.remaining == 0) {
    mem_.unregister_latency_stream(st.core);
    set_core_busy(st.core, false);
    st.on_done();
    return;
  }
  --st.remaining;
  const SimTime dur = gray_adjusted(
      st.core, mem_.latency_bound(st.core, st.per_segment), sim_.now());
  sim_.schedule_after(
      dur, [this, st = std::move(st)]() mutable { walk_step(std::move(st)); });
}

void SccChip::fabric_walk_step(WalkState st, TileId ret_site) {
  // Executes at the home controller's tile (load sampled on its region).
  if (st.remaining == 0) {
    mem_.unregister_latency_stream(st.core);
    const TileId ct = topo_.tile_of(st.core);
    fabric_->hop(ct, [this, core = st.core, ret_site,
                      cb = std::move(st.on_done)]() mutable {
      set_core_busy_at(core, false, fabric_->now());
      fabric_->hop(ret_site, [cb = std::move(cb)]() mutable { cb(); });
    });
    return;
  }
  --st.remaining;
  const SimTime dur = gray_adjusted(
      st.core, mem_.latency_bound(st.core, st.per_segment, fabric_->now()),
      fabric_->now());
  fabric_->after(dur, [this, st = std::move(st), ret_site]() mutable {
    fabric_walk_step(std::move(st), ret_site);
  });
}

void SccChip::dram_stream(CoreId core, double bytes,
                          StageCallback on_done) {
  SCCPIPE_CHECK(on_done != nullptr);
  if (fabric_ != nullptr) {
    // Region-native chain: the stream is issued from the core's tile (the
    // memory system routes it through the controller's region and calls
    // back at the core's tile), then the continuation hops home.
    const TileId ret = fabric_->current_site();
    const TileId ct = topo_.tile_of(core);
    fabric_->hop(ct, [this, core, bytes, ret,
                      cb = std::move(on_done)]() mutable {
      if (core_dead_at(core, fabric_->now())) return;
      set_core_busy_at(core, true, fabric_->now());
      mem_.bulk(core, bytes, copy_rate(core),
                [this, core, ret, cb = std::move(cb)]() mutable {
                  set_core_busy_at(core, false, fabric_->now());
                  fabric_->hop(ret, [cb = std::move(cb)]() mutable { cb(); });
                });
    });
    return;
  }
  if (core_dead(core)) return;
  set_core_busy(core, true);
  mem_.bulk(core, bytes, copy_rate(core),
            [this, core, cb = std::move(on_done)]() mutable {
              set_core_busy(core, false);
              cb();
            });
}

void SccChip::refresh_power() {
  double watts = power_model_.config().chip_idle_watts;
  if (allocated_count() > 0) {
    watts += power_model_.config().uncore_active_watts;
  }
  for (CoreId c = 0; c < topo_.core_count(); ++c) {
    if (cores_[static_cast<std::size_t>(c)].allocated) {
      watts += power_model_.core_dynamic_watts(operating_point(c));
    }
  }
  for (TileId t = 0; t < topo_.tile_count(); ++t) {
    watts +=
        power_model_.tile_static_watts(tile_points_[static_cast<std::size_t>(t)].volts);
  }
  meter_.set_power(watts);
}

}  // namespace sccpipe
