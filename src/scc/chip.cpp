#include "sccpipe/scc/chip.hpp"

#include <algorithm>
#include <memory>

#include "sccpipe/sim/fault.hpp"

namespace sccpipe {

ChipConfig ChipConfig::scc() { return ChipConfig{}; }

ChipConfig ChipConfig::mogon_node() {
  ChipConfig cfg;
  // 64 cores as 32 tiles in an 8x4 grid; the topology is a formality — the
  // links and memory are fast enough that they never bind.
  cfg.mesh_layout.width = 8;
  cfg.mesh_layout.height = 4;
  cfg.mesh_layout.mc_positions = {{0, 0}, {7, 0}, {0, 2}, {7, 2}};
  cfg.mesh_timing.router_latency = SimTime::ns(2);
  cfg.mesh_timing.link_bandwidth_bytes_per_sec = 4.0e10;
  cfg.memory.mc_bandwidth_bytes_per_sec = 2.0e10;
  cfg.memory.base_line_latency = SimTime::ns(8);  // big L3 + prefetchers
  cfg.memory.per_hop_latency = SimTime::ns(0);
  cfg.memory.latency_contention_coeff = 0.02;
  cfg.default_mhz = 1066;  // table level closest in spirit; speed comes from
                           // ipc_factor so the 2.1 GHz clock is folded in.
  cfg.ipc_factor = 4.4;    // 2.1 GHz / 1066 MHz * ~2.2 IPC vs P54C
  cfg.copy_rate_bytes_per_sec = 8.5e9;
  cfg.render_cycles_scale = 0.4;
  // Power: not reported for the cluster in the paper; rough server figures.
  cfg.power.chip_idle_watts = 120.0;
  cfg.power.uncore_active_watts = 30.0;
  cfg.power.core_dynamic_watts_ref = 2.5;
  cfg.power.ref_mhz = 1066;
  return cfg;
}

SccChip::SccChip(Simulator& sim, ChipConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      topo_(cfg.mesh_layout),
      mesh_(topo_, cfg.mesh_timing),
      mem_(sim, topo_, mesh_, cfg.memory),
      power_model_(cfg.power),
      meter_(sim) {
  SCCPIPE_CHECK_MSG(dvfs_.allowed(cfg_.default_mhz),
                    "default frequency " << cfg_.default_mhz);
  tile_mhz_.assign(static_cast<std::size_t>(topo_.tile_count()),
                   cfg_.default_mhz);
  tile_points_.assign(static_cast<std::size_t>(topo_.tile_count()),
                      dvfs_.point_for(cfg_.default_mhz));
  cores_.resize(static_cast<std::size_t>(topo_.core_count()));
  refresh_power();
}

int SccChip::voltage_domain_of(TileId tile) const {
  SCCPIPE_CHECK(tile >= 0 && tile < topo_.tile_count());
  const TileCoord c = topo_.coord_of(tile);
  const int domains_x = (topo_.layout().width + 1) / 2;
  return (c.y / 2) * domains_x + (c.x / 2);
}

void SccChip::set_tile_frequency(TileId tile, int mhz) {
  SCCPIPE_CHECK(tile >= 0 && tile < topo_.tile_count());
  SCCPIPE_CHECK(dvfs_.allowed(mhz));
  tile_mhz_[static_cast<std::size_t>(tile)] = mhz;
  refresh_voltages();
  refresh_power();
}

void SccChip::refresh_voltages() {
  // Every tile runs at its requested frequency; its voltage is either its
  // own requirement (PerTile) or the maximum requirement in its 2x2
  // domain (the SCC's real supply granularity).
  for (TileId t = 0; t < topo_.tile_count(); ++t) {
    const auto ti = static_cast<std::size_t>(t);
    OperatingPoint p = dvfs_.point_for(tile_mhz_[ti]);
    if (cfg_.voltage_granularity == VoltageGranularity::PerQuadTileDomain) {
      const int dom = voltage_domain_of(t);
      for (TileId o = 0; o < topo_.tile_count(); ++o) {
        if (voltage_domain_of(o) != dom) continue;
        p.volts = std::max(
            p.volts,
            dvfs_.point_for(tile_mhz_[static_cast<std::size_t>(o)]).volts);
      }
    }
    tile_points_[ti] = p;
  }
}

void SccChip::set_core_frequency(CoreId core, int mhz) {
  set_tile_frequency(topo_.tile_of(core), mhz);
}

OperatingPoint SccChip::operating_point(CoreId core) const {
  return tile_points_[static_cast<std::size_t>(topo_.tile_of(core))];
}

double SccChip::frequency_hz(CoreId core) const {
  return operating_point(core).mhz * 1e6;
}

double SccChip::effective_hz(CoreId core) const {
  return frequency_hz(core) * cfg_.ipc_factor;
}

double SccChip::copy_rate(CoreId core) const {
  SCCPIPE_CHECK(topo_.valid_core(core));
  return cfg_.copy_rate_bytes_per_sec;
}

void SccChip::allocate_core(CoreId core) {
  SCCPIPE_CHECK(topo_.valid_core(core));
  CoreState& st = cores_[static_cast<std::size_t>(core)];
  SCCPIPE_CHECK_MSG(!st.allocated, "core " << core << " already allocated");
  st.allocated = true;
  refresh_power();
}

void SccChip::release_core(CoreId core) {
  SCCPIPE_CHECK(topo_.valid_core(core));
  CoreState& st = cores_[static_cast<std::size_t>(core)];
  SCCPIPE_CHECK(st.allocated);
  if (st.busy) set_core_busy(core, false);
  st.allocated = false;
  refresh_power();
}

bool SccChip::allocated(CoreId core) const {
  SCCPIPE_CHECK(topo_.valid_core(core));
  return cores_[static_cast<std::size_t>(core)].allocated;
}

int SccChip::allocated_count() const {
  int n = 0;
  for (const CoreState& st : cores_) n += st.allocated ? 1 : 0;
  return n;
}

void SccChip::set_core_busy(CoreId core, bool busy) {
  SCCPIPE_CHECK(topo_.valid_core(core));
  CoreState& st = cores_[static_cast<std::size_t>(core)];
  if (st.busy == busy) return;
  if (busy) {
    st.busy_since = sim_.now();
  } else {
    st.busy_total += sim_.now() - st.busy_since;
  }
  st.busy = busy;
}

SimTime SccChip::core_busy_time(CoreId core) const {
  SCCPIPE_CHECK(topo_.valid_core(core));
  const CoreState& st = cores_[static_cast<std::size_t>(core)];
  SimTime t = st.busy_total;
  if (st.busy) t += sim_.now() - st.busy_since;
  return t;
}

bool SccChip::core_dead(CoreId core) const {
  return fault_ != nullptr && fault_->core_failed(core, sim_.now());
}

void SccChip::compute(CoreId core, double ref_cycles,
                      StageCallback on_done) {
  SCCPIPE_CHECK(ref_cycles >= 0.0);
  SCCPIPE_CHECK(on_done != nullptr);
  if (core_dead(core)) return;  // fail-stop: nothing starts, nothing returns
  const SimTime dur = SimTime::sec(ref_cycles / effective_hz(core));
  set_core_busy(core, true);
  sim_.schedule_after(dur, [this, core, cb = std::move(on_done)]() mutable {
    set_core_busy(core, false);
    cb();
  });
}

void SccChip::memory_walk(CoreId core, double line_accesses,
                          StageCallback on_done) {
  SCCPIPE_CHECK(on_done != nullptr);
  if (core_dead(core)) return;
  mem_.register_latency_stream(core);
  set_core_busy(core, true);
  // Split the walk into segments, re-sampling the controller load at each
  // boundary: a long traversal sees the average congestion over its
  // lifetime, not whatever happened to be in flight the instant it began.
  constexpr int kSegments = 4;
  walk_step(WalkState{core, line_accesses / kSegments, kSegments,
                      std::move(on_done)});
}

void SccChip::walk_step(WalkState st) {
  if (st.remaining == 0) {
    mem_.unregister_latency_stream(st.core);
    set_core_busy(st.core, false);
    st.on_done();
    return;
  }
  --st.remaining;
  const SimTime dur = mem_.latency_bound(st.core, st.per_segment);
  sim_.schedule_after(
      dur, [this, st = std::move(st)]() mutable { walk_step(std::move(st)); });
}

void SccChip::dram_stream(CoreId core, double bytes,
                          StageCallback on_done) {
  SCCPIPE_CHECK(on_done != nullptr);
  if (core_dead(core)) return;
  set_core_busy(core, true);
  mem_.bulk(core, bytes, copy_rate(core),
            [this, core, cb = std::move(on_done)]() mutable {
              set_core_busy(core, false);
              cb();
            });
}

void SccChip::refresh_power() {
  double watts = power_model_.config().chip_idle_watts;
  if (allocated_count() > 0) {
    watts += power_model_.config().uncore_active_watts;
  }
  for (CoreId c = 0; c < topo_.core_count(); ++c) {
    if (cores_[static_cast<std::size_t>(c)].allocated) {
      watts += power_model_.core_dynamic_watts(operating_point(c));
    }
  }
  for (TileId t = 0; t < topo_.tile_count(); ++t) {
    watts +=
        power_model_.tile_static_watts(tile_points_[static_cast<std::size_t>(t)].volts);
  }
  meter_.set_power(watts);
}

}  // namespace sccpipe
