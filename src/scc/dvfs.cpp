#include "sccpipe/scc/dvfs.hpp"

namespace sccpipe {

DvfsTable::DvfsTable()
    : points_{{400, 0.7}, {533, 1.1}, {800, 1.3}, {1066, 1.3}} {}

OperatingPoint DvfsTable::point_for(int mhz) const {
  for (const OperatingPoint& p : points_) {
    if (p.mhz == mhz) return p;
  }
  SCCPIPE_CHECK_MSG(false, "unsupported frequency " << mhz << " MHz");
  return {};
}

bool DvfsTable::allowed(int mhz) const {
  for (const OperatingPoint& p : points_) {
    if (p.mhz == mhz) return true;
  }
  return false;
}

}  // namespace sccpipe
