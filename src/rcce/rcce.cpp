#include "sccpipe/rcce/rcce.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sccpipe {

RcceComm::RcceComm(SccChip& chip, RcceConfig cfg) : chip_(chip), cfg_(cfg) {
  SCCPIPE_CHECK(cfg_.mpb_chunk_bytes > 0.0);
}

int RcceComm::chunk_count(double bytes) const {
  if (bytes <= 0.0) return 1;
  return static_cast<int>(std::ceil(bytes / cfg_.mpb_chunk_bytes));
}

RcceComm::StatusCallback RcceComm::require_ok(Callback cb, const char* what) {
  return [cb = std::move(cb), what](const Status& s) mutable {
    SCCPIPE_CHECK_MSG(s.ok(), "unhandled RCCE fault in " << what << ": "
                                  << s.to_string());
    cb();
  };
}

void RcceComm::send(CoreId from, CoreId to, double bytes,
                    Callback on_complete) {
  SCCPIPE_CHECK(on_complete != nullptr);
  send(from, to, bytes, require_ok(std::move(on_complete), "send"));
}

void RcceComm::recv(CoreId to, CoreId from, Callback on_complete) {
  SCCPIPE_CHECK(on_complete != nullptr);
  recv(to, from, require_ok(std::move(on_complete), "recv"));
}

void RcceComm::send(CoreId from, CoreId to, double bytes,
                    StatusCallback on_complete) {
  SCCPIPE_CHECK(chip_.topology().valid_core(from));
  SCCPIPE_CHECK(chip_.topology().valid_core(to));
  SCCPIPE_CHECK_MSG(from != to, "RCCE send to self (core " << from << ")");
  SCCPIPE_CHECK(bytes >= 0.0);
  SCCPIPE_CHECK(on_complete != nullptr);

  const Key key{from, to};
  auto& rq = recvs_[key];
  if (!rq.empty()) {
    StatusCallback receiver_done = std::move(rq.front());
    rq.pop_front();
    start_transfer(from, to, bytes, std::move(on_complete),
                   std::move(receiver_done));
    return;
  }
  sends_[key].push_back(PendingSend{bytes, std::move(on_complete)});
}

void RcceComm::recv(CoreId to, CoreId from, StatusCallback on_complete) {
  SCCPIPE_CHECK(chip_.topology().valid_core(from));
  SCCPIPE_CHECK(chip_.topology().valid_core(to));
  SCCPIPE_CHECK(on_complete != nullptr);

  const Key key{from, to};
  auto& sq = sends_[key];
  if (!sq.empty()) {
    PendingSend ps = std::move(sq.front());
    sq.pop_front();
    start_transfer(from, to, ps.bytes, std::move(ps.on_complete),
                   std::move(on_complete));
    return;
  }
  recvs_[key].push_back(std::move(on_complete));
}

void RcceComm::start_transfer(CoreId from, CoreId to, double bytes,
                              StatusCallback sender_done,
                              StatusCallback receiver_done) {
  attempt_transfer(from, to, bytes, 1, chip_.sim().now(),
                   std::move(sender_done), std::move(receiver_done));
}

/// Stages 4-5 of a delivered payload: receiver software overhead, then the
/// bounce into the receiver's DRAM partition (§VI-A).
void RcceComm::finish_delivery(CoreId to, double bytes,
                               StatusCallback sender_done,
                               StatusCallback receiver_done) {
  const double recv_cycles =
      cfg_.recv_overhead_cycles + cfg_.per_chunk_cycles * chunk_count(bytes);
  chip_.compute(to, recv_cycles, [this, to, bytes, sd = std::move(sender_done),
                                  rd = std::move(receiver_done)]() mutable {
    auto finish = [this, sd = std::move(sd), rd = std::move(rd)]() mutable {
      ++delivered_;
      // Sender unblocks first (its ack returns), then the receiver
      // proceeds with the data.
      sd(Status{});
      rd(Status{});
    };
    if (cfg_.local_memory_banks) {
      // Data lands directly in the receiver's local bank.
      finish();
    } else {
      chip_.dram_stream(to, bytes, std::move(finish));
    }
  });
}

void RcceComm::attempt_transfer(CoreId from, CoreId to, double bytes,
                                int attempt, SimTime first_attempt_at,
                                StatusCallback sender_done,
                                StatusCallback receiver_done) {
  // Stage 1: sender software overhead + per-chunk handshakes (paid again on
  // every retransmission — the whole protocol round restarts).
  const double sender_cycles =
      cfg_.send_overhead_cycles + cfg_.per_chunk_cycles * chunk_count(bytes);
  chip_.compute(from, sender_cycles, [this, from, to, bytes, attempt,
                                      first_attempt_at,
                                      sd = std::move(sender_done),
                                      rd = std::move(receiver_done)]() mutable {
    // Stage 2: sender streams the source buffer out of its own partition.
    // With hypothetical local memory banks (ablation) the source already
    // sits in the sender's local store — skip the partition read.
    auto after_source = [this, from, to, bytes, attempt, first_attempt_at,
                         sd = std::move(sd), rd = std::move(rd)]() mutable {
      // Stage 3: payload crosses the mesh. The fault layer may lose or
      // delay it here; the mesh contention state advances either way (the
      // flits occupied the links up to the faulty point).
      const MeshTopology& topo = chip_.topology();
      const SimTime now = chip_.sim().now();
      const SimTime mesh_done = chip_.mesh().transfer(
          now, topo.core_coord(from), topo.core_coord(to), bytes);
      SimTime extra = SimTime::zero();
      const MessageFate fate =
          fault_ != nullptr ? fault_->rcce_message_fate(now, from, to, &extra)
                            : MessageFate::Deliver;
      if (fate == MessageFate::Deliver) {
        chip_.sim().schedule_at(mesh_done + extra,
                                [this, to, bytes, sd = std::move(sd),
                                 rd = std::move(rd)]() mutable {
                                  finish_delivery(to, bytes, std::move(sd),
                                                  std::move(rd));
                                });
        return;
      }
      if (fate == MessageFate::Corrupt) {
        // The payload arrives but fails the receiver's CRC-32 check. The
        // receiver pays its full consumption cost for the bad copy
        // (software overhead + partition bounce) before the NACK returns;
        // only then does the sender restart the protocol round.
        chip_.sim().schedule_at(
            mesh_done + extra,
            [this, from, to, bytes, attempt, first_attempt_at,
             sd = std::move(sd), rd = std::move(rd)]() mutable {
              const double recv_cycles =
                  cfg_.recv_overhead_cycles +
                  cfg_.per_chunk_cycles * chunk_count(bytes);
              chip_.compute(
                  to, recv_cycles,
                  [this, from, to, bytes, attempt, first_attempt_at,
                   sd = std::move(sd), rd = std::move(rd)]() mutable {
                    auto nack = [this, from, to, bytes, attempt,
                                 first_attempt_at, sd = std::move(sd),
                                 rd = std::move(rd)]() mutable {
                      resolve_loss(from, to, bytes, attempt, first_attempt_at,
                                   chip_.sim().now(), "corrupted",
                                   std::move(sd), std::move(rd));
                    };
                    if (cfg_.local_memory_banks) {
                      nack();
                    } else {
                      chip_.dram_stream(to, bytes, std::move(nack));
                    }
                  });
            });
        return;
      }
      // The payload is gone. The sender spins on the ack flag until its
      // per-attempt timeout expires, then either retransmits after the
      // backoff or gives up with a typed error to both endpoints.
      const SimTime detect = max(mesh_done, now + cfg_.retry.timeout);
      resolve_loss(from, to, bytes, attempt, first_attempt_at, detect, "lost",
                   std::move(sd), std::move(rd));
    };
    if (cfg_.local_memory_banks) {
      after_source();
    } else {
      chip_.dram_stream(from, bytes, std::move(after_source));
    }
  });
}

void RcceComm::resolve_loss(CoreId from, CoreId to, double bytes, int attempt,
                            SimTime first_attempt_at, SimTime detect,
                            const char* how, StatusCallback sender_done,
                            StatusCallback receiver_done) {
  const RetryPolicy& rp = cfg_.retry;
  const bool budget_left = attempt < rp.max_attempts;
  const SimTime next_start =
      detect + (budget_left ? rp.backoff_after(attempt) : SimTime::zero());
  const bool deadline_ok =
      rp.deadline.is_zero() || next_start - first_attempt_at <= rp.deadline;
  if (budget_left && deadline_ok) {
    chip_.sim().schedule_at(
        next_start,
        [this, from, to, bytes, attempt, first_attempt_at,
         sd = std::move(sender_done), rd = std::move(receiver_done)]() mutable {
          ++retransmissions_;
          attempt_transfer(from, to, bytes, attempt + 1, first_attempt_at,
                           std::move(sd), std::move(rd));
        });
    return;
  }
  std::ostringstream oss;
  oss << "rcce " << from << "->" << to << " " << how << " after " << attempt
      << " attempt(s), " << (detect - first_attempt_at).to_ms()
      << " ms since rendezvous";
  Status failure{budget_left ? StatusCode::DeadlineExceeded
                                   : StatusCode::RetriesExhausted,
                       oss.str()};
  chip_.sim().schedule_at(detect, [this, failure = std::move(failure),
                                   sd = std::move(sender_done),
                                   rd = std::move(receiver_done)]() mutable {
    ++transfers_failed_;
    sd(failure);
    rd(failure);
  });
}

std::size_t RcceComm::abandon_pair(CoreId from, CoreId to) {
  const Key key{from, to};
  std::size_t dropped = 0;
  if (auto it = sends_.find(key); it != sends_.end()) {
    dropped += it->second.size();
    sends_.erase(it);
  }
  if (auto it = recvs_.find(key); it != recvs_.end()) {
    dropped += it->second.size();
    recvs_.erase(it);
  }
  return dropped;
}

SimTime RcceComm::ideal_transfer_time(CoreId from, CoreId to,
                                      double bytes) const {
  const MeshTopology& topo = chip_.topology();
  const double cycles = cfg_.send_overhead_cycles + cfg_.recv_overhead_cycles +
                        2.0 * cfg_.per_chunk_cycles * chunk_count(bytes);
  const SimTime sw =
      SimTime::sec(cycles / std::min(chip_.effective_hz(from),
                                     chip_.effective_hz(to)));
  const SimTime copies = SimTime::sec(bytes / chip_.copy_rate(from) +
                                      bytes / chip_.copy_rate(to));
  const SimTime mesh = chip_.mesh().ideal_latency(
      topo.core_coord(from), topo.core_coord(to), bytes);
  return sw + copies + mesh;
}

void RcceComm::iset_power(CoreId core, int mhz) {
  chip_.set_core_frequency(core, mhz);
}

int RcceComm::power_domain(CoreId core) const {
  return chip_.voltage_domain_of(chip_.topology().tile_of(core));
}

RcceComm::Barrier::Barrier(RcceComm& comm, std::vector<CoreId> group)
    : comm_(comm), group_(std::move(group)) {
  SCCPIPE_CHECK(!group_.empty());
}

void RcceComm::Barrier::arrive(CoreId core, Callback on_release) {
  SCCPIPE_CHECK_MSG(std::find(group_.begin(), group_.end(), core) !=
                        group_.end(),
                    "core " << core << " not in barrier group");
  for (const auto& [c, cb] : waiting_) {
    SCCPIPE_CHECK_MSG(c != core, "core " << core << " arrived twice");
  }
  waiting_.emplace_back(core, std::move(on_release));
  if (waiting_.size() == group_.size()) {
    auto released = std::move(waiting_);
    waiting_.clear();
    for (auto& [c, cb] : released) cb();
  }
}

}  // namespace sccpipe
