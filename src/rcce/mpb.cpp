#include "sccpipe/rcce/mpb.hpp"

#include <utility>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

MpbSystem::MpbSystem(SccChip& chip, MpbConfig cfg) : chip_(chip), cfg_(cfg) {
  SCCPIPE_CHECK(cfg_.bytes_per_core > 0.0);
  used_.assign(static_cast<std::size_t>(chip.core_count()), 0.0);
}

void MpbSystem::allocate(CoreId owner, double bytes) {
  SCCPIPE_CHECK(chip_.topology().valid_core(owner));
  SCCPIPE_CHECK(bytes >= 0.0);
  auto& used = used_[static_cast<std::size_t>(owner)];
  SCCPIPE_CHECK_MSG(used + bytes <= cfg_.bytes_per_core,
                    "MPB overflow on core " << owner << ": " << used << " + "
                                            << bytes << " > "
                                            << cfg_.bytes_per_core);
  used += bytes;
}

void MpbSystem::release(CoreId owner, double bytes) {
  SCCPIPE_CHECK(chip_.topology().valid_core(owner));
  auto& used = used_[static_cast<std::size_t>(owner)];
  SCCPIPE_CHECK_MSG(bytes <= used + 1e-9, "MPB release below zero");
  used -= bytes;
}

double MpbSystem::used(CoreId owner) const {
  SCCPIPE_CHECK(chip_.topology().valid_core(owner));
  return used_[static_cast<std::size_t>(owner)];
}

double MpbSystem::available(CoreId owner) const {
  return cfg_.bytes_per_core - used(owner);
}

void MpbSystem::put(CoreId from, CoreId to, double bytes, Callback on_done) {
  SCCPIPE_CHECK(on_done != nullptr);
  SCCPIPE_CHECK_MSG(bytes <= cfg_.bytes_per_core,
                    "single put larger than the MPB window");
  // Writer's copy loop, then the mesh crossing to the owner's tile.
  chip_.compute(from, cfg_.write_cycles_per_byte * bytes,
                [this, from, to, bytes, cb = std::move(on_done)]() mutable {
                  const MeshTopology& topo = chip_.topology();
                  const SimTime done = chip_.mesh().transfer(
                      chip_.sim().now(), topo.core_coord(from),
                      topo.core_coord(to), bytes);
                  chip_.sim().schedule_at(done, std::move(cb));
                });
}

void MpbSystem::get(CoreId reader, CoreId owner, double bytes,
                    Callback on_done) {
  SCCPIPE_CHECK(on_done != nullptr);
  SCCPIPE_CHECK_MSG(bytes <= cfg_.bytes_per_core,
                    "single get larger than the MPB window");
  const MeshTopology& topo = chip_.topology();
  const SimTime arrived = chip_.mesh().transfer(
      chip_.sim().now(), topo.core_coord(owner), topo.core_coord(reader),
      bytes);
  chip_.sim().schedule_at(
      arrived, [this, reader, bytes, cb = std::move(on_done)]() mutable {
        chip_.compute(reader, cfg_.read_cycles_per_byte * bytes,
                      std::move(cb));
      });
}

void MpbSystem::flag_wait(CoreId waiter, CoreId owner, int flag_id,
                          Callback on_set) {
  SCCPIPE_CHECK(on_set != nullptr);
  const FlagKey key{owner, flag_id};
  auto pending = pending_sets_.find(key);
  if (pending != pending_sets_.end() && pending->second > 0) {
    --pending->second;
    // One poll round to observe the already-set flag.
    chip_.compute(waiter, cfg_.flag_poll_cycles, std::move(on_set));
    return;
  }
  waiters_[key].push_back(std::move(on_set));
}

void MpbSystem::flag_set(CoreId setter, CoreId owner, int flag_id) {
  SCCPIPE_CHECK(chip_.topology().valid_core(setter));
  const FlagKey key{owner, flag_id};
  auto it = waiters_.find(key);
  if (it != waiters_.end() && !it->second.empty()) {
    Callback cb = std::move(it->second.front());
    it->second.erase(it->second.begin());
    // The write crosses the mesh to the flag's MPB before the waiter's
    // poll can observe it.
    const MeshTopology& topo = chip_.topology();
    const SimTime visible = chip_.mesh().transfer(
        chip_.sim().now(), topo.core_coord(setter), topo.core_coord(owner),
        4.0 /* one flag line */);
    chip_.sim().schedule_at(visible, std::move(cb));
    return;
  }
  ++pending_sets_[key];
}

}  // namespace sccpipe
