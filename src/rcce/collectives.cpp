#include "sccpipe/rcce/collectives.hpp"

#include <algorithm>
#include <memory>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

namespace {

std::vector<CoreId> others(CoreId root, const std::vector<CoreId>& group) {
  SCCPIPE_CHECK_MSG(std::find(group.begin(), group.end(), root) != group.end(),
                    "root " << root << " not in the group");
  std::vector<CoreId> out;
  out.reserve(group.size() - 1);
  for (const CoreId c : group) {
    if (c != root) out.push_back(c);
  }
  return out;
}

}  // namespace

void RcceCollectives::rooted_linear(CoreId root, std::vector<CoreId> members,
                                    double bytes_each, bool root_sends,
                                    double root_post_cycles,
                                    Callback on_complete) {
  SCCPIPE_CHECK(on_complete != nullptr);
  if (members.empty()) {
    on_complete();
    return;
  }

  struct State {
    RcceCollectives* self;
    CoreId root;
    std::vector<CoreId> members;
    double bytes_each;
    bool root_sends;
    double root_post_cycles;
    std::size_t next = 0;
    Callback on_complete;

    void step(const std::shared_ptr<State>& keep) {
      if (next == members.size()) {
        on_complete();
        return;
      }
      const CoreId peer = members[next++];
      auto after_transfer = [this, keep] {
        if (root_post_cycles > 0.0) {
          self->comm_.chip().compute(root, root_post_cycles,
                                     [this, keep] { step(keep); });
        } else {
          step(keep);
        }
      };
      if (root_sends) {
        // Receiver posts first (it is idle), then the root's send matches.
        self->comm_.recv(peer, root, [] {});
        self->comm_.send(root, peer, bytes_each, std::move(after_transfer));
      } else {
        self->comm_.send(peer, root, bytes_each, [] {});
        self->comm_.recv(root, peer, std::move(after_transfer));
      }
    }
  };

  auto state = std::make_shared<State>(
      State{this, root, std::move(members), bytes_each, root_sends,
            root_post_cycles, 0, std::move(on_complete)});
  state->step(state);
}

void RcceCollectives::broadcast(CoreId root, const std::vector<CoreId>& group,
                                double bytes, Callback on_complete) {
  rooted_linear(root, others(root, group), bytes, /*root_sends=*/true, 0.0,
                std::move(on_complete));
}

void RcceCollectives::scatter(CoreId root, const std::vector<CoreId>& group,
                              double bytes_per_member, Callback on_complete) {
  rooted_linear(root, others(root, group), bytes_per_member,
                /*root_sends=*/true, 0.0, std::move(on_complete));
}

void RcceCollectives::gather(CoreId root, const std::vector<CoreId>& group,
                             double bytes_per_member, Callback on_complete) {
  rooted_linear(root, others(root, group), bytes_per_member,
                /*root_sends=*/false, 0.0, std::move(on_complete));
}

void RcceCollectives::reduce(CoreId root, const std::vector<CoreId>& group,
                             double bytes, double combine_cycles,
                             Callback on_complete) {
  SCCPIPE_CHECK(combine_cycles >= 0.0);
  rooted_linear(root, others(root, group), bytes, /*root_sends=*/false,
                combine_cycles, std::move(on_complete));
}

}  // namespace sccpipe
