#include "sccpipe/mem/memory.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "sccpipe/noc/fabric.hpp"

namespace sccpipe {

MemorySystem::MemorySystem(Simulator& sim, const MeshTopology& topo,
                           MeshModel& mesh, MemoryConfig cfg)
    : sim_(sim), topo_(topo), mesh_(mesh), cfg_(cfg), cache_(cfg.cache) {
  SCCPIPE_CHECK(cfg_.mc_bandwidth_bytes_per_sec > 0.0);
  const int n = topo_.mc_count();
  latency_streams_.assign(static_cast<std::size_t>(n), 0);
  stats_.resize(static_cast<std::size_t>(n));
  rebuild_mcs();
}

void MemorySystem::rebuild_mcs() {
  for (const auto& mc : mcs_) {
    SCCPIPE_CHECK_MSG(mc == nullptr || mc->active_flows() == 0,
                      "re-homing a controller with flows in flight");
  }
  mcs_.clear();
  const int n = topo_.mc_count();
  mcs_.reserve(static_cast<std::size_t>(n));
  for (McId m = 0; m < n; ++m) {
    Simulator& owner =
        fabric_ != nullptr
            ? fabric_->region_sim(topo_.tile_at(topo_.mc_position(m)))
            : sim_;
    mcs_.push_back(std::make_unique<FairShareResource>(
        owner, "mc" + std::to_string(m), cfg_.mc_bandwidth_bytes_per_sec));
  }
}

void MemorySystem::attach_fabric(RegionFabric* fabric) {
  fabric_ = fabric;
  rebuild_mcs();
}

void MemorySystem::bulk(CoreId core, double bytes, double core_rate_cap,
                        BulkCallback on_done) {
  SCCPIPE_CHECK(topo_.valid_core(core));
  SCCPIPE_CHECK(bytes >= 0.0);
  SCCPIPE_CHECK(on_done != nullptr);
  if (fabric_ != nullptr) {
    fabric_bulk(core, bytes, core_rate_cap, std::move(on_done));
    return;
  }
  const McId mc = topo_.home_mc(core);
  const auto mci = static_cast<std::size_t>(mc);
  McStats& st = stats_[mci];
  st.bulk_bytes += bytes;
  ++st.bulk_flows;

  // Charge the mesh route between the core's tile and the controller; this
  // advances link horizons (contention) and yields the extra head latency
  // the stream pays before DRAM starts answering.
  const SimTime now = sim_.now();
  const SimTime mesh_done = mesh_.transfer(now, topo_.core_coord(core),
                                           topo_.mc_position(mc), bytes);
  const SimTime mesh_extra = mesh_done - now;

  // Fault layer: a stalled controller admits the flow only once its outage
  // window ends; a degraded one serves it at a fraction of its bandwidth
  // (modelled as service-time inflation on this flow).
  double service_bytes = bytes;
  SimTime admit_at = now;
  if (fault_ != nullptr && fault_->enabled()) {
    admit_at = fault_->mc_available(mc, now);
    service_bytes = bytes * fault_->mc_slowdown(mc, admit_at);
  }

  auto begin_flow = [this, mci, service_bytes, core_rate_cap, mesh_extra,
                     cb = std::move(on_done)]() mutable {
    mcs_[mci]->start_flow(
        service_bytes,
        [this, mesh_extra, cb = std::move(cb)]() mutable {
          if (mesh_extra.is_zero()) {
            cb();
          } else {
            sim_.schedule_after(mesh_extra, std::move(cb));
          }
        },
        core_rate_cap);
  };
  if (admit_at > now) {
    sim_.schedule_at(admit_at, std::move(begin_flow));
  } else {
    begin_flow();
  }
}

void MemorySystem::fabric_bulk(CoreId core, double bytes, double core_rate_cap,
                               BulkCallback on_done) {
  // Located chain (caller executes at the issuing core's tile):
  //   1. hop to the host bridge — the mesh model is host-owned, so the
  //      route charge and the fault-layer admission decision happen there;
  //   2. located post to the controller's tile, delayed by the head
  //      latency (mesh contention + any MC outage window) plus transit —
  //      the flow queues on the controller's *regional* fair-share queue;
  //   3. completion hops back to the core's tile, where on_done runs.
  RegionFabric& fab = *fabric_;
  fab.hop(fab.bridge_site(), [this, core, bytes, core_rate_cap,
                              cb = std::move(on_done)]() mutable {
    RegionFabric& fab = *fabric_;
    const McId mc = topo_.home_mc(core);
    const auto mci = static_cast<std::size_t>(mc);
    McStats& st = stats_[mci];
    st.bulk_bytes += bytes;
    ++st.bulk_flows;
    const SimTime now = fab.now();
    const SimTime mesh_done = mesh_.transfer(now, topo_.core_coord(core),
                                             topo_.mc_position(mc), bytes);
    const SimTime mesh_extra = mesh_done - now;
    double service_bytes = bytes;
    SimTime admit_at = now;
    if (fault_ != nullptr && fault_->enabled()) {
      admit_at = fault_->mc_available(mc, now);
      service_bytes = bytes * fault_->mc_slowdown(mc, admit_at);
    }
    const TileId mc_tile = topo_.tile_at(topo_.mc_position(mc));
    const SimTime start = max(now, admit_at) + mesh_extra +
                          fab.transit(fab.bridge_site(), mc_tile);
    fab.post_at(mc_tile, start, [this, core, service_bytes, core_rate_cap,
                                 cb = std::move(cb)]() mutable {
      const auto mci = static_cast<std::size_t>(topo_.home_mc(core));
      mcs_[mci]->start_flow(
          service_bytes,
          [this, core, cb = std::move(cb)]() mutable {
            fabric_->hop(topo_.tile_of(core),
                         [cb = std::move(cb)]() mutable { cb(); });
          },
          core_rate_cap);
    });
  });
}

SimTime MemorySystem::latency_bound(CoreId core, double n_accesses) const {
  return latency_bound(core, n_accesses, sim_.now());
}

SimTime MemorySystem::latency_bound(CoreId core, double n_accesses,
                                    SimTime now) const {
  SCCPIPE_CHECK(topo_.valid_core(core));
  SCCPIPE_CHECK(n_accesses >= 0.0);
  const McId mc = topo_.home_mc(core);
  const int hops = topo_.home_mc_hops(core);
  const double load = mc_load(mc);
  const double inflation = std::min(
      cfg_.latency_contention_cap,
      1.0 + cfg_.latency_contention_coeff * (load > 1.0 ? load - 1.0 : 0.0));
  SimTime per_access = cfg_.base_line_latency * inflation +
                       cfg_.per_hop_latency * static_cast<double>(hops);
  if (fault_ != nullptr && fault_->enabled()) {
    per_access = per_access * fault_->mc_slowdown(mc, now);
  }
  return per_access * n_accesses;
}

void MemorySystem::register_latency_stream(CoreId core) {
  const auto mc = static_cast<std::size_t>(topo_.home_mc(core));
  ++latency_streams_[mc];
  stats_[mc].latency_streams_peak =
      std::max<std::uint64_t>(stats_[mc].latency_streams_peak,
                              static_cast<std::uint64_t>(latency_streams_[mc]));
}

void MemorySystem::unregister_latency_stream(CoreId core) {
  const auto mc = static_cast<std::size_t>(topo_.home_mc(core));
  SCCPIPE_CHECK_MSG(latency_streams_[mc] > 0, "unbalanced unregister");
  --latency_streams_[mc];
}

double MemorySystem::mc_load(McId mc) const {
  const auto i = static_cast<std::size_t>(mc);
  SCCPIPE_CHECK(mc >= 0 && mc < topo_.mc_count());
  return static_cast<double>(mcs_[i]->active_flows()) +
         static_cast<double>(latency_streams_[i]);
}

const McStats& MemorySystem::stats(McId mc) const {
  SCCPIPE_CHECK(mc >= 0 && mc < topo_.mc_count());
  return stats_[static_cast<std::size_t>(mc)];
}

}  // namespace sccpipe
