#include "sccpipe/mem/memory.hpp"

#include <algorithm>
#include <string>

namespace sccpipe {

MemorySystem::MemorySystem(Simulator& sim, const MeshTopology& topo,
                           MeshModel& mesh, MemoryConfig cfg)
    : sim_(sim), topo_(topo), mesh_(mesh), cfg_(cfg), cache_(cfg.cache) {
  SCCPIPE_CHECK(cfg_.mc_bandwidth_bytes_per_sec > 0.0);
  const int n = topo_.mc_count();
  mcs_.reserve(static_cast<std::size_t>(n));
  for (McId m = 0; m < n; ++m) {
    mcs_.push_back(std::make_unique<FairShareResource>(
        sim_, "mc" + std::to_string(m), cfg_.mc_bandwidth_bytes_per_sec));
  }
  latency_streams_.assign(static_cast<std::size_t>(n), 0);
  stats_.resize(static_cast<std::size_t>(n));
}

void MemorySystem::bulk(CoreId core, double bytes, double core_rate_cap,
                        BulkCallback on_done) {
  SCCPIPE_CHECK(topo_.valid_core(core));
  SCCPIPE_CHECK(bytes >= 0.0);
  SCCPIPE_CHECK(on_done != nullptr);
  const McId mc = topo_.home_mc(core);
  const auto mci = static_cast<std::size_t>(mc);
  McStats& st = stats_[mci];
  st.bulk_bytes += bytes;
  ++st.bulk_flows;

  // Charge the mesh route between the core's tile and the controller; this
  // advances link horizons (contention) and yields the extra head latency
  // the stream pays before DRAM starts answering.
  const SimTime now = sim_.now();
  const SimTime mesh_done = mesh_.transfer(now, topo_.core_coord(core),
                                           topo_.mc_position(mc), bytes);
  const SimTime mesh_extra = mesh_done - now;

  // Fault layer: a stalled controller admits the flow only once its outage
  // window ends; a degraded one serves it at a fraction of its bandwidth
  // (modelled as service-time inflation on this flow).
  double service_bytes = bytes;
  SimTime admit_at = now;
  if (fault_ != nullptr && fault_->enabled()) {
    admit_at = fault_->mc_available(mc, now);
    service_bytes = bytes * fault_->mc_slowdown(mc, admit_at);
  }

  auto begin_flow = [this, mci, service_bytes, core_rate_cap, mesh_extra,
                     cb = std::move(on_done)]() mutable {
    mcs_[mci]->start_flow(
        service_bytes,
        [this, mesh_extra, cb = std::move(cb)]() mutable {
          if (mesh_extra.is_zero()) {
            cb();
          } else {
            sim_.schedule_after(mesh_extra, std::move(cb));
          }
        },
        core_rate_cap);
  };
  if (admit_at > now) {
    sim_.schedule_at(admit_at, std::move(begin_flow));
  } else {
    begin_flow();
  }
}

SimTime MemorySystem::latency_bound(CoreId core, double n_accesses) const {
  SCCPIPE_CHECK(topo_.valid_core(core));
  SCCPIPE_CHECK(n_accesses >= 0.0);
  const McId mc = topo_.home_mc(core);
  const int hops = topo_.home_mc_hops(core);
  const double load = mc_load(mc);
  const double inflation = std::min(
      cfg_.latency_contention_cap,
      1.0 + cfg_.latency_contention_coeff * (load > 1.0 ? load - 1.0 : 0.0));
  SimTime per_access = cfg_.base_line_latency * inflation +
                       cfg_.per_hop_latency * static_cast<double>(hops);
  if (fault_ != nullptr && fault_->enabled()) {
    per_access = per_access * fault_->mc_slowdown(mc, sim_.now());
  }
  return per_access * n_accesses;
}

void MemorySystem::register_latency_stream(CoreId core) {
  const auto mc = static_cast<std::size_t>(topo_.home_mc(core));
  ++latency_streams_[mc];
  stats_[mc].latency_streams_peak =
      std::max<std::uint64_t>(stats_[mc].latency_streams_peak,
                              static_cast<std::uint64_t>(latency_streams_[mc]));
}

void MemorySystem::unregister_latency_stream(CoreId core) {
  const auto mc = static_cast<std::size_t>(topo_.home_mc(core));
  SCCPIPE_CHECK_MSG(latency_streams_[mc] > 0, "unbalanced unregister");
  --latency_streams_[mc];
}

double MemorySystem::mc_load(McId mc) const {
  const auto i = static_cast<std::size_t>(mc);
  SCCPIPE_CHECK(mc >= 0 && mc < topo_.mc_count());
  return static_cast<double>(mcs_[i]->active_flows()) +
         static_cast<double>(latency_streams_[i]);
}

const McStats& MemorySystem::stats(McId mc) const {
  SCCPIPE_CHECK(mc >= 0 && mc < topo_.mc_count());
  return stats_[static_cast<std::size_t>(mc)];
}

}  // namespace sccpipe
