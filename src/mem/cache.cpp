#include "sccpipe/mem/cache.hpp"

#include <cmath>

namespace sccpipe {

namespace {
// A 4-way cache holds somewhat less than its nominal capacity of a
// streaming working set before conflict misses start; classic rule of
// thumb used by analytic models.
constexpr double kAssocHeadroom = 0.85;
}  // namespace

CacheModel::CacheModel(CacheConfig cfg) : cfg_(cfg) {
  SCCPIPE_CHECK(cfg_.line_bytes > 0);
  SCCPIPE_CHECK(cfg_.l1_bytes > 0 && cfg_.l2_bytes >= cfg_.l1_bytes);
  SCCPIPE_CHECK(cfg_.ways > 0);
}

double CacheModel::lines(double bytes) const {
  return std::ceil(bytes / static_cast<double>(cfg_.line_bytes));
}

bool CacheModel::fits_l1(double working_set_bytes) const {
  return working_set_bytes <= kAssocHeadroom * cfg_.l1_bytes;
}

bool CacheModel::fits_l2(double working_set_bytes) const {
  return working_set_bytes <= kAssocHeadroom * cfg_.l2_bytes;
}

double CacheModel::dram_traffic(double bytes_in, double bytes_out,
                                double reuse_window_bytes,
                                double touches_per_byte) const {
  SCCPIPE_CHECK(bytes_in >= 0.0 && bytes_out >= 0.0);
  SCCPIPE_CHECK(touches_per_byte >= 0.0);
  // Compulsory read traffic: every input line fetched once.
  double traffic = bytes_in;
  // Re-touches miss only if the reuse window spills past L2.
  if (touches_per_byte > 1.0 && !fits_l2(reuse_window_bytes)) {
    traffic += bytes_in * (touches_per_byte - 1.0);
  }
  // Streaming stores: write-allocate fetch + eventual write-back.
  traffic += 2.0 * bytes_out;
  return traffic;
}

}  // namespace sccpipe
