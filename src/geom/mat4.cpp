#include "sccpipe/geom/mat4.hpp"

#include <cmath>

namespace sccpipe {

Mat4 Mat4::identity() {
  Mat4 r;
  for (int i = 0; i < 4; ++i) r.m[i][i] = 1.0f;
  return r;
}

Mat4 Mat4::translate(Vec3 t) {
  Mat4 r = identity();
  r.m[3][0] = t.x;
  r.m[3][1] = t.y;
  r.m[3][2] = t.z;
  return r;
}

Mat4 Mat4::scale(Vec3 s) {
  Mat4 r;
  r.m[0][0] = s.x;
  r.m[1][1] = s.y;
  r.m[2][2] = s.z;
  r.m[3][3] = 1.0f;
  return r;
}

Mat4 Mat4::rotate_y(float radians) {
  Mat4 r = identity();
  const float c = std::cos(radians);
  const float s = std::sin(radians);
  r.m[0][0] = c;
  r.m[0][2] = -s;
  r.m[2][0] = s;
  r.m[2][2] = c;
  return r;
}

Mat4 Mat4::perspective(float fovy, float aspect, float z_near, float z_far) {
  const float f = 1.0f / std::tan(fovy * 0.5f);
  Mat4 r;
  r.m[0][0] = f / aspect;
  r.m[1][1] = f;
  r.m[2][2] = (z_far + z_near) / (z_near - z_far);
  r.m[2][3] = -1.0f;
  r.m[3][2] = (2.0f * z_far * z_near) / (z_near - z_far);
  return r;
}

Mat4 Mat4::frustum(float left, float right, float bottom, float top,
                   float z_near, float z_far) {
  Mat4 r;
  r.m[0][0] = 2.0f * z_near / (right - left);
  r.m[1][1] = 2.0f * z_near / (top - bottom);
  r.m[2][0] = (right + left) / (right - left);
  r.m[2][1] = (top + bottom) / (top - bottom);
  r.m[2][2] = (z_far + z_near) / (z_near - z_far);
  r.m[2][3] = -1.0f;
  r.m[3][2] = (2.0f * z_far * z_near) / (z_near - z_far);
  return r;
}

Mat4 Mat4::look_at(Vec3 eye, Vec3 center, Vec3 up) {
  const Vec3 f = normalize(center - eye);
  const Vec3 s = normalize(cross(f, up));
  const Vec3 u = cross(s, f);
  Mat4 r = identity();
  r.m[0][0] = s.x;
  r.m[1][0] = s.y;
  r.m[2][0] = s.z;
  r.m[0][1] = u.x;
  r.m[1][1] = u.y;
  r.m[2][1] = u.z;
  r.m[0][2] = -f.x;
  r.m[1][2] = -f.y;
  r.m[2][2] = -f.z;
  r.m[3][0] = -dot(s, eye);
  r.m[3][1] = -dot(u, eye);
  r.m[3][2] = dot(f, eye);
  return r;
}

Mat4 operator*(const Mat4& a, const Mat4& b) {
  Mat4 r;
  for (int c = 0; c < 4; ++c) {
    for (int row = 0; row < 4; ++row) {
      float sum = 0.0f;
      for (int k = 0; k < 4; ++k) sum += a.m[k][row] * b.m[c][k];
      r.m[c][row] = sum;
    }
  }
  return r;
}

Vec4 operator*(const Mat4& a, const Vec4& v) {
  Vec4 r;
  r.x = a.m[0][0] * v.x + a.m[1][0] * v.y + a.m[2][0] * v.z + a.m[3][0] * v.w;
  r.y = a.m[0][1] * v.x + a.m[1][1] * v.y + a.m[2][1] * v.z + a.m[3][1] * v.w;
  r.z = a.m[0][2] * v.x + a.m[1][2] * v.y + a.m[2][2] * v.z + a.m[3][2] * v.w;
  r.w = a.m[0][3] * v.x + a.m[1][3] * v.y + a.m[2][3] * v.z + a.m[3][3] * v.w;
  return r;
}

}  // namespace sccpipe
