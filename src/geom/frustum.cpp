#include "sccpipe/geom/frustum.hpp"

#include <cmath>

namespace sccpipe {

namespace {
Plane normalize_plane(float a, float b, float c, float d) {
  const Vec3 n{a, b, c};
  const float len = length(n);
  if (len <= 0.0f) return Plane{{0.0f, 0.0f, 0.0f}, 0.0f};
  return Plane{n * (1.0f / len), d / len};
}
}  // namespace

Frustum::Frustum(const Mat4& vp) {
  // Gribb/Hartmann extraction. Rows of the (row-vector) matrix; our storage
  // is column-major m[col][row], so row i component of column c is m[c][i].
  auto row = [&](int i) {
    return Vec4{vp.m[0][i], vp.m[1][i], vp.m[2][i], vp.m[3][i]};
  };
  const Vec4 r0 = row(0), r1 = row(1), r2 = row(2), r3 = row(3);

  auto plane_from = [&](Vec4 v) {
    return normalize_plane(v.x, v.y, v.z, v.w);
  };
  planes_[0] = plane_from(r3 + r0);  // left
  planes_[1] = plane_from(r3 - r0);  // right
  planes_[2] = plane_from(r3 + r1);  // bottom
  planes_[3] = plane_from(r3 - r1);  // top
  planes_[4] = plane_from(r3 + r2);  // near
  planes_[5] = plane_from(r3 - r2);  // far
}

CullResult Frustum::classify(const Aabb& box) const {
  const Vec3 c = box.center();
  const Vec3 e = box.extent();
  bool intersects = false;
  for (const Plane& p : planes_) {
    // Projected radius of the box onto the plane normal.
    const float r = e.x * std::fabs(p.normal.x) + e.y * std::fabs(p.normal.y) +
                    e.z * std::fabs(p.normal.z);
    const float dist = p.signed_distance(c);
    if (dist < -r) return CullResult::Outside;
    if (dist < r) intersects = true;
  }
  return intersects ? CullResult::Intersects : CullResult::Inside;
}

bool Frustum::contains(Vec3 p) const {
  for (const Plane& pl : planes_) {
    if (pl.signed_distance(p) < 0.0f) return false;
  }
  return true;
}

}  // namespace sccpipe
