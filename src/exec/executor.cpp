#include "sccpipe/exec/executor.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "sccpipe/support/check.hpp"

namespace sccpipe::exec {

int default_jobs() {
  if (const char* env = std::getenv("SCCPIPE_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int default_sim_jobs() {
  if (const char* env = std::getenv("SCCPIPE_SIM_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1;
}

Status validate_sim_jobs(int sim_jobs) {
  if (sim_jobs >= 1) return Status();
  return Status(StatusCode::InvalidArgument,
                "--sim-jobs must be a positive worker count, got " +
                    std::to_string(sim_jobs));
}

// ----------------------------------------------------------------- ThreadPool

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stopping = false;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl) {
  SCCPIPE_CHECK(threads >= 1);
  impl_->workers.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

int ThreadPool::size() const {
  return static_cast<int>(impl_->workers.size());
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    SCCPIPE_CHECK_MSG(!impl_->stopping, "submit() after shutdown");
    impl_->queue.push_back(std::move(fn));
  }
  impl_->cv.notify_one();
}

// --------------------------------------------------------------- parallel_for

void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs == 0) jobs = default_jobs();
  SCCPIPE_CHECK(jobs >= 1);

  std::mutex err_mu;
  std::exception_ptr first_error;
  std::size_t first_error_index = n;

  if (jobs == 1) {
    // Inline: bit-identical to the parallel path by construction, and the
    // baseline the determinism tests compare against. Same error contract
    // too: every index runs, the lowest-index failure is rethrown.
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  // Work-stealing-free dynamic schedule: workers race on an atomic index,
  // so long and short tasks balance without any per-task queue traffic.
  std::atomic<std::size_t> next{0};

  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  {
    const int workers =
        static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs), n));
    ThreadPool pool(workers);
    std::mutex done_mu;
    std::condition_variable done_cv;
    int remaining = workers;
    for (int w = 0; w < workers; ++w) {
      pool.submit([&] {
        drain();
        std::lock_guard<std::mutex> lock(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

// ------------------------------------------------------------------- run_grid

std::vector<RunResult> run_grid(const SceneBundle& scene,
                                const WorkloadTrace& trace,
                                const std::vector<RunConfig>& configs,
                                int jobs) {
  std::vector<RunResult> results(configs.size());
  parallel_for(jobs, configs.size(), [&](std::size_t i) {
    results[i] = run_walkthrough(scene, trace, configs[i]);
  });
  return results;
}

WorkloadTrace::ForEachFrame trace_runner(int jobs) {
  return [jobs](std::size_t n, const std::function<void(std::size_t)>& fn) {
    parallel_for(jobs, n, fn);
  };
}

}  // namespace sccpipe::exec
