#include "sccpipe/host/host_link.hpp"

#include <cmath>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

HostChannel::HostChannel(Simulator& sim, HostLinkConfig cfg)
    : sim_(sim), cfg_(cfg), wire_("host-wire"), credits_(cfg.credit_frames) {
  SCCPIPE_CHECK(cfg_.wire_bandwidth_bytes_per_sec > 0.0);
  SCCPIPE_CHECK(cfg_.datagram_bytes > 0.0);
  SCCPIPE_CHECK(cfg_.credit_frames > 0);
}

double HostChannel::datagrams(double bytes) const {
  if (bytes <= 0.0) return 1.0;
  return std::ceil(bytes / cfg_.datagram_bytes);
}

double HostChannel::host_side_cycles(double bytes) const {
  return cfg_.host_cycles_per_byte * bytes;
}

double HostChannel::scc_send_cycles(double bytes) const {
  return cfg_.scc_send_cycles_per_byte * bytes +
         cfg_.per_datagram_cycles * datagrams(bytes);
}

double HostChannel::scc_recv_cycles(double bytes) const {
  return cfg_.scc_recv_cycles_per_byte * bytes +
         cfg_.per_datagram_cycles * datagrams(bytes);
}

void HostChannel::push(double bytes, PushCallback on_accepted) {
  SCCPIPE_CHECK(bytes >= 0.0);
  SCCPIPE_CHECK(on_accepted != nullptr);
  waiting_admission_.push_back(PendingPush{bytes, std::move(on_accepted)});
  try_admit();
}

void HostChannel::try_admit() {
  while (credits_ > 0 && !waiting_admission_.empty()) {
    --credits_;
    PendingPush p = std::move(waiting_admission_.front());
    waiting_admission_.pop_front();
    const SimTime wire_time =
        SimTime::sec(p.bytes / cfg_.wire_bandwidth_bytes_per_sec);
    const SimTime done = wire_.acquire(sim_.now(), wire_time);
    sim_.schedule_at(done, [this, bytes = p.bytes,
                            cb = std::move(p.on_accepted)]() mutable {
      arrived_.push_back(bytes);
      cb();  // producer may prepare the next frame
      try_deliver();
    });
  }
}

void HostChannel::pop(PopCallback on_message) {
  SCCPIPE_CHECK(on_message != nullptr);
  waiting_pop_.push_back(std::move(on_message));
  try_deliver();
}

void HostChannel::try_deliver() {
  while (!arrived_.empty() && !waiting_pop_.empty()) {
    const double bytes = arrived_.front();
    arrived_.pop_front();
    PopCallback cb = std::move(waiting_pop_.front());
    waiting_pop_.pop_front();
    ++credits_;
    try_admit();
    cb(bytes);
  }
}

}  // namespace sccpipe
