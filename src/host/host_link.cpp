#include "sccpipe/host/host_link.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

HostChannel::HostChannel(Simulator& sim, HostLinkConfig cfg)
    : sim_(sim), cfg_(cfg), wire_("host-wire"), credits_(cfg.credit_frames) {
  SCCPIPE_CHECK(cfg_.wire_bandwidth_bytes_per_sec > 0.0);
  SCCPIPE_CHECK(cfg_.datagram_bytes > 0.0);
  SCCPIPE_CHECK(cfg_.credit_frames > 0);
}

double HostChannel::datagrams(double bytes) const {
  if (bytes <= 0.0) return 1.0;
  return std::ceil(bytes / cfg_.datagram_bytes);
}

double HostChannel::host_side_cycles(double bytes) const {
  return cfg_.host_cycles_per_byte * bytes;
}

double HostChannel::scc_send_cycles(double bytes) const {
  return cfg_.scc_send_cycles_per_byte * bytes +
         cfg_.per_datagram_cycles * datagrams(bytes);
}

double HostChannel::scc_recv_cycles(double bytes) const {
  return cfg_.scc_recv_cycles_per_byte * bytes +
         cfg_.per_datagram_cycles * datagrams(bytes);
}

void HostChannel::set_fault(FaultInjector* fault, RetryPolicy retry,
                            ErrorHandler on_error) {
  SCCPIPE_CHECK(on_error != nullptr);
  fault_ = fault;
  retry_ = retry;
  on_error_ = std::move(on_error);
}

void HostChannel::push(double bytes, PushCallback on_accepted) {
  SCCPIPE_CHECK(bytes >= 0.0);
  SCCPIPE_CHECK(on_accepted != nullptr);
  waiting_admission_.push_back(PendingPush{bytes, std::move(on_accepted)});
  try_admit();
}

void HostChannel::try_admit() {
  while (credits_ > 0 && !waiting_admission_.empty()) {
    --credits_;
    PendingPush p = std::move(waiting_admission_.front());
    waiting_admission_.pop_front();
    transmit(p.bytes, std::move(p.on_accepted), 1, sim_.now());
  }
}

/// One wire crossing of an admitted message. With a fault layer attached
/// the datagram may be lost: the sender's application-level ack timer
/// (retry_.timeout) detects it and retransmits after the backoff, up to
/// the attempt budget; exhaustion surfaces a typed error to on_error_ (the
/// consumed credit stays lost, as the consumer will never pop this
/// message).
void HostChannel::transmit(double bytes, PushCallback on_accepted,
                           int attempt, SimTime first_attempt_at) {
  if (attempt == 1) ++first_sends_;
  const SimTime wire_time =
      SimTime::sec(bytes / cfg_.wire_bandwidth_bytes_per_sec);
  const SimTime done = wire_.acquire(sim_.now(), wire_time);
  SimTime extra = SimTime::zero();
  const MessageFate fate = fault_ != nullptr
                               ? fault_->host_message_fate(sim_.now(), &extra)
                               : MessageFate::Deliver;
  if (fate == MessageFate::Deliver) {
    sim_.schedule_at(done + extra, [this, bytes,
                                    cb = std::move(on_accepted)]() mutable {
      arrived_.push_back(bytes);
      cb();  // producer may prepare the next frame
      try_deliver();
    });
    return;
  }
  // Drop: the application-level ack timer expires. Corrupt: the datagram
  // crossed the wire but fails the endpoint CRC check, so the NACK returns
  // at delivery time — detection is faster, but the wire occupancy was
  // paid. Both resolve into the same retransmit-or-surface tail.
  const SimTime detect = fate == MessageFate::Corrupt
                             ? done + extra
                             : max(done, sim_.now() + retry_.timeout);
  const bool budget_left = attempt < retry_.max_attempts;
  const SimTime next_start =
      detect + (budget_left ? retry_.backoff_after(attempt) : SimTime::zero());
  const bool deadline_ok = retry_.deadline.is_zero() ||
                           next_start - first_attempt_at <= retry_.deadline;
  if (budget_left && deadline_ok) {
    sim_.schedule_at(next_start, [this, bytes, attempt, first_attempt_at,
                                  cb = std::move(on_accepted)]() mutable {
      ++retransmissions_;
      transmit(bytes, std::move(cb), attempt + 1, first_attempt_at);
    });
    return;
  }
  std::ostringstream oss;
  oss << "host-link message (" << bytes << " B) "
      << (fate == MessageFate::Corrupt ? "corrupted" : "lost") << " after "
      << attempt << " attempt(s)";
  Status failure{budget_left ? StatusCode::DeadlineExceeded
                                   : StatusCode::RetriesExhausted,
                       oss.str()};
  sim_.schedule_at(detect, [this, failure = std::move(failure)] {
    SCCPIPE_CHECK_MSG(on_error_ != nullptr,
                      "host-link fault without an error handler: "
                          << failure.to_string());
    on_error_(failure);
  });
}

void HostChannel::pop(PopCallback on_message) {
  SCCPIPE_CHECK(on_message != nullptr);
  waiting_pop_.push_back(std::move(on_message));
  try_deliver();
}

void HostChannel::try_deliver() {
  while (!arrived_.empty() && !waiting_pop_.empty()) {
    const double bytes = arrived_.front();
    arrived_.pop_front();
    PopCallback cb = std::move(waiting_pop_.front());
    waiting_pop_.pop_front();
    ++credits_;
    try_admit();
    cb(bytes);
  }
}

}  // namespace sccpipe
