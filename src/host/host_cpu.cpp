#include "sccpipe/host/host_cpu.hpp"

#include "sccpipe/support/check.hpp"

namespace sccpipe {

HostCpu::HostCpu(Simulator& sim, HostCpuConfig cfg)
    : sim_(sim), cfg_(cfg), meter_(sim) {
  SCCPIPE_CHECK(cfg_.effective_hz > 0.0);
  meter_.set_power(cfg_.idle_watts);
}

void HostCpu::compute(double ref_cycles, StageCallback on_done) {
  SCCPIPE_CHECK(ref_cycles >= 0.0);
  SCCPIPE_CHECK(on_done != nullptr);
  const SimTime dur = SimTime::sec(ref_cycles / cfg_.effective_hz);
  // Serialise behind queued work.
  const SimTime start = max(sim_.now(), horizon_);
  horizon_ = start + dur;
  set_busy(true);
  sim_.schedule_at(horizon_, [this, cb = std::move(on_done)]() mutable {
    set_busy(false);
    cb();
  });
}

void HostCpu::set_busy(bool busy) {
  if (busy) {
    if (busy_depth_++ == 0) {
      busy_since_ = sim_.now();
      meter_.set_power(cfg_.busy_watts);
    }
  } else {
    SCCPIPE_CHECK(busy_depth_ > 0);
    if (--busy_depth_ == 0) {
      busy_total_ += sim_.now() - busy_since_;
      meter_.set_power(cfg_.idle_watts);
    }
  }
}

SimTime HostCpu::busy_time() const {
  SimTime t = busy_total_;
  if (busy_depth_ > 0) t += sim_.now() - busy_since_;
  return t;
}

}  // namespace sccpipe
