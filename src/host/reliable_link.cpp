#include "sccpipe/host/reliable_link.hpp"

#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

ReliableHostChannel::ReliableHostChannel(Simulator& sim,
                                         ReliableLinkConfig cfg)
    : sim_(sim), cfg_(cfg), wire_("host-arq-wire") {
  SCCPIPE_CHECK(cfg_.link.wire_bandwidth_bytes_per_sec > 0.0);
  SCCPIPE_CHECK(cfg_.link.datagram_bytes > 0.0);
  SCCPIPE_CHECK(cfg_.control_bytes > 0.0);
  SCCPIPE_CHECK(cfg_.window >= 1);
  SCCPIPE_CHECK(cfg_.queue_depth >= 1);
  SCCPIPE_CHECK(cfg_.retry.max_attempts >= 1);
}

double ReliableHostChannel::datagrams(double bytes) const {
  if (bytes <= 0.0) return 1.0;
  return std::ceil(bytes / cfg_.link.datagram_bytes);
}

double ReliableHostChannel::host_side_cycles(double bytes) const {
  return cfg_.link.host_cycles_per_byte * bytes;
}

double ReliableHostChannel::scc_send_cycles(double bytes) const {
  return cfg_.link.scc_send_cycles_per_byte * bytes +
         cfg_.link.per_datagram_cycles * datagrams(bytes);
}

double ReliableHostChannel::scc_recv_cycles(double bytes) const {
  return cfg_.link.scc_recv_cycles_per_byte * bytes +
         cfg_.link.per_datagram_cycles * datagrams(bytes);
}

void ReliableHostChannel::set_error_handler(ErrorHandler on_error) {
  SCCPIPE_CHECK(on_error != nullptr);
  on_error_ = std::move(on_error);
}

SimTime ReliableHostChannel::smoothed_rtt() const {
  return has_rtt_ ? SimTime::sec(srtt_sec_) : SimTime::zero();
}

void ReliableHostChannel::push(double bytes, PushCallback on_accepted) {
  SCCPIPE_CHECK(bytes >= 0.0);
  SCCPIPE_CHECK(on_accepted != nullptr);
  queue_.push_back(PendingPush{bytes, std::move(on_accepted)});
  pump();
}

void ReliableHostChannel::pop(PopCallback on_message) {
  SCCPIPE_CHECK(on_message != nullptr);
  waiting_pop_.push_back(std::move(on_message));
  try_deliver();
}

int ReliableHostChannel::credit_available() const {
  return cfg_.queue_depth - static_cast<int>(admitted_ - granted_);
}

void ReliableHostChannel::pump() {
  bool admitted_any = false;
  while (!queue_.empty() && static_cast<int>(flight_.size()) < cfg_.window &&
         credit_available() > 0) {
    PendingPush p = std::move(queue_.front());
    queue_.pop_front();
    const std::uint64_t seq = next_seq_++;
    ++admitted_;
    InFlight& f = flight_[seq];
    f.bytes = p.bytes;
    f.first_tx = sim_.now();
    admitted_any = true;
    // The producer is decoupled the moment the window slot and receiver
    // credit are reserved; the transfer proceeds in the background.
    p.on_accepted();
    transmit(seq, 1);
  }
  if (admitted_any && stalled_) {
    stalled_ = false;
    credit_stall_time_ = credit_stall_time_ + (sim_.now() - stall_since_);
  }
  if (!stalled_ && !queue_.empty() &&
      static_cast<int>(flight_.size()) < cfg_.window &&
      credit_available() <= 0) {
    // Window open, data waiting, but the receiver owes us a slot: the
    // producer is now throttled by the consumer, which is the whole point
    // of credit flow control — count it so RunResult can show it.
    stalled_ = true;
    stall_since_ = sim_.now();
    ++credit_stalls_;
  }
}

void ReliableHostChannel::transmit(std::uint64_t seq, int attempt) {
  auto it = flight_.find(seq);
  SCCPIPE_CHECK(it != flight_.end());
  InFlight& f = it->second;
  f.attempt = attempt;
  f.last_tx = sim_.now();
  if (attempt == 1) {
    ++first_sends_;
  } else {
    ++retransmissions_;
    f.retransmitted = true;  // Karn: this message yields no RTT sample
  }
  const SimTime wire_time =
      SimTime::sec(f.bytes / cfg_.link.wire_bandwidth_bytes_per_sec);
  const SimTime done = wire_.acquire(sim_.now(), wire_time);
  DatagramFate fate;
  if (fault_ != nullptr) fate = fault_->host_datagram_fate(sim_.now());
  const double bytes = f.bytes;
  if (fate.fate == MessageFate::Deliver) {
    sim_.schedule_at(done + fate.extra_delay,
                     [this, seq, bytes] { deliver_data(seq, bytes); });
    if (fate.duplicate) {
      sim_.schedule_at(done + fate.extra_delay + fate.duplicate_lag,
                       [this, seq, bytes] { deliver_data(seq, bytes); });
    }
  }
  // Drop/BurstDrop: lost in flight. Corrupt: crossed the wire (occupancy
  // paid) but fails the datagram CRC and is discarded at the receiver. No
  // ACK comes back either way; the retransmit timer recovers.
  double rto_sec = base_rto().to_sec();
  const double cap = cfg_.retry.max_backoff.to_sec();
  for (int i = 1; i < attempt && rto_sec < cap; ++i) {
    rto_sec *= cfg_.retry.backoff_factor;
  }
  if (rto_sec > cap) rto_sec = cap;
  f.timer = sim_.schedule_at(sim_.now() + SimTime::sec(rto_sec),
                             [this, seq] { on_timeout(seq); });
}

SimTime ReliableHostChannel::base_rto() const {
  if (!has_rtt_) return cfg_.retry.timeout;
  const double rto = srtt_sec_ + 4.0 * rttvar_sec_;
  const double floor = cfg_.retry.backoff.to_sec();
  return SimTime::sec(rto < floor ? floor : rto);
}

void ReliableHostChannel::on_timeout(std::uint64_t seq) {
  auto it = flight_.find(seq);
  if (it == flight_.end()) return;  // settled after the timer was queued
  InFlight& f = it->second;
  if (reassembly_.count(seq) != 0 ||
      (seq < next_expected_ && skipped_.count(seq) == 0)) {
    // Spurious timeout: the data reached the receiver and its ACK — which
    // is lossless by the control-plane model — is still on the wire.
    // Retransmitting (or worse, abandoning) here would contradict the
    // delivery the consumer is about to observe; wait for the ACK.
    return;
  }
  if (f.attempt >= cfg_.retry.max_attempts) {
    abandon(seq, StatusCode::RetriesExhausted);
    return;
  }
  if (!cfg_.retry.deadline.is_zero() &&
      sim_.now() - f.first_tx > cfg_.retry.deadline) {
    abandon(seq, StatusCode::DeadlineExceeded);
    return;
  }
  transmit(seq, f.attempt + 1);
}

void ReliableHostChannel::abandon(std::uint64_t seq, StatusCode code) {
  auto it = flight_.find(seq);
  SCCPIPE_CHECK(it != flight_.end());
  const int attempts = it->second.attempt;
  const double bytes = it->second.bytes;
  sim_.cancel(it->second.timer);
  flight_.erase(it);
  ++abandoned_;
  // Tombstone the hole at once so a stale in-flight copy can never deliver
  // a message the application was told is dead; the drain advances past it
  // and the reserved receiver slot frees. The grant rides a real control
  // datagram (wire latency inside send_control).
  skipped_.insert(seq);
  drain();
  send_control(/*is_grant=*/true);
  std::ostringstream oss;
  oss << "host-link message #" << seq << " (" << bytes << " B) abandoned ("
      << (code == StatusCode::DeadlineExceeded ? "deadline" : "retries")
      << ") after " << attempts << " attempt(s)";
  Status failure{code, oss.str()};
  SCCPIPE_CHECK_MSG(on_error_ != nullptr,
                    "reliable host-link abandon without an error handler: "
                        << failure.to_string());
  on_error_(failure, seq);
  pump();  // the freed window slot may admit queued work
}

void ReliableHostChannel::note_occupancy() {
  const int occupancy =
      static_cast<int>(arrived_.size() + reassembly_.size());
  SCCPIPE_CHECK_MSG(occupancy <= cfg_.queue_depth,
                    "receiver buffer exceeded its credit bound: "
                        << occupancy << " > " << cfg_.queue_depth);
  if (occupancy > max_occupancy_) max_occupancy_ = occupancy;
}

void ReliableHostChannel::deliver_data(std::uint64_t seq, double bytes) {
  if (seq < next_expected_ || reassembly_.count(seq) != 0 ||
      skipped_.count(seq) != 0) {
    // Already delivered, already buffered, or abandoned: suppress, but
    // re-ACK — the duplicate usually means our previous ACK raced a
    // retransmit timer, and the repeat settles the sender.
    ++dup_suppressed_;
    send_control(/*is_grant=*/false);
    return;
  }
  reassembly_[seq] = bytes;
  note_occupancy();
  drain();
  send_control(/*is_grant=*/false);
}

void ReliableHostChannel::drain() {
  while (true) {
    auto skip = skipped_.find(next_expected_);
    if (skip != skipped_.end()) {
      skipped_.erase(skip);
      ++consumed_total_;  // the reserved slot frees without a pop
      ++next_expected_;
      continue;
    }
    auto it = reassembly_.find(next_expected_);
    if (it == reassembly_.end()) break;
    arrived_.push_back(it->second);
    reassembly_.erase(it);
    ++next_expected_;
  }
  try_deliver();
}

void ReliableHostChannel::try_deliver() {
  while (!arrived_.empty() && !waiting_pop_.empty()) {
    const double bytes = arrived_.front();
    arrived_.pop_front();
    PopCallback cb = std::move(waiting_pop_.front());
    waiting_pop_.pop_front();
    ++consumed_total_;
    send_control(/*is_grant=*/true);
    cb(bytes);
  }
}

void ReliableHostChannel::send_control(bool is_grant) {
  if (is_grant) {
    ++credit_grants_;
  } else {
    ++acks_sent_;
  }
  const SimTime wire_time =
      SimTime::sec(cfg_.control_bytes / cfg_.link.wire_bandwidth_bytes_per_sec);
  const SimTime done = wire_.acquire(sim_.now(), wire_time);
  const std::uint64_t cum = next_expected_;
  const std::uint64_t consumed = consumed_total_;
  std::set<std::uint64_t> sacks;
  for (const auto& entry : reassembly_) sacks.insert(entry.first);
  sim_.schedule_at(done, [this, cum, consumed, sacks = std::move(sacks)] {
    on_control(cum, consumed, sacks);
  });
}

void ReliableHostChannel::on_control(std::uint64_t cum_next,
                                     std::uint64_t consumed,
                                     const std::set<std::uint64_t>& sacks) {
  const SimTime now = sim_.now();
  if (consumed > granted_) granted_ = consumed;  // credits are cumulative
  while (!flight_.empty() && flight_.begin()->first < cum_next) {
    settle(flight_.begin()->first, now);
  }
  for (std::uint64_t seq : sacks) {
    if (flight_.count(seq) != 0) settle(seq, now);
  }
  if (!sacks.empty()) {
    // Every unacked message below the highest SACK was passed over by a
    // successor; three such indications trigger one fast retransmit.
    const std::uint64_t high = *sacks.rbegin();
    std::vector<std::uint64_t> fast;
    for (auto& entry : flight_) {
      if (entry.first >= high) break;
      InFlight& f = entry.second;
      if (++f.dup_indications >= 3 && !f.fast_retx_done) {
        f.fast_retx_done = true;
        fast.push_back(entry.first);
      }
    }
    for (std::uint64_t seq : fast) {
      auto it = flight_.find(seq);
      SCCPIPE_CHECK(it != flight_.end());
      sim_.cancel(it->second.timer);
      transmit(seq, it->second.attempt + 1);
    }
  }
  pump();
}

void ReliableHostChannel::settle(std::uint64_t seq, SimTime now) {
  auto it = flight_.find(seq);
  SCCPIPE_CHECK(it != flight_.end());
  InFlight& f = it->second;
  sim_.cancel(f.timer);
  if (!f.retransmitted) {
    // RFC 6298 smoothing over the one unambiguous sample.
    const double sample = (now - f.last_tx).to_sec();
    if (!has_rtt_) {
      srtt_sec_ = sample;
      rttvar_sec_ = sample / 2.0;
      has_rtt_ = true;
    } else {
      rttvar_sec_ = 0.75 * rttvar_sec_ + 0.25 * std::abs(srtt_sec_ - sample);
      srtt_sec_ = 0.875 * srtt_sec_ + 0.125 * sample;
    }
  }
  flight_.erase(it);
}

void ReliableHostChannel::save_state(snapshot::Writer& w) const {
  w.u64(next_seq_);
  w.u64(admitted_);
  w.u64(granted_);
  w.f64(srtt_sec_);
  w.f64(rttvar_sec_);
  w.u32(has_rtt_ ? 1 : 0);
  w.u64(next_expected_);
  w.u64(consumed_total_);
  w.u64(first_sends_);
  w.u64(retransmissions_);
  w.u64(dup_suppressed_);
  w.u64(acks_sent_);
  w.u64(credit_grants_);
  w.u64(abandoned_);
  w.u64(credit_stalls_);
  w.i64(credit_stall_time_.to_ns());
  w.i64(max_occupancy_);
}

Status ReliableHostChannel::restore_state(snapshot::Reader& r) {
  std::uint64_t u[12] = {};
  double srtt = 0.0, rttvar = 0.0;
  std::uint32_t has_rtt = 0;
  std::int64_t stall_ns = 0, max_occ = 0;
  if (Status s = r.u64(&u[0]); !s.ok()) return s;
  if (Status s = r.u64(&u[1]); !s.ok()) return s;
  if (Status s = r.u64(&u[2]); !s.ok()) return s;
  if (Status s = r.f64(&srtt); !s.ok()) return s;
  if (Status s = r.f64(&rttvar); !s.ok()) return s;
  if (Status s = r.u32(&has_rtt); !s.ok()) return s;
  for (int i = 3; i < 12; ++i) {
    if (Status s = r.u64(&u[i]); !s.ok()) return s;
  }
  if (Status s = r.i64(&stall_ns); !s.ok()) return s;
  if (Status s = r.i64(&max_occ); !s.ok()) return s;
  next_seq_ = u[0];
  admitted_ = u[1];
  granted_ = u[2];
  srtt_sec_ = srtt;
  rttvar_sec_ = rttvar;
  has_rtt_ = has_rtt != 0;
  next_expected_ = u[3];
  consumed_total_ = u[4];
  first_sends_ = u[5];
  retransmissions_ = u[6];
  dup_suppressed_ = u[7];
  acks_sent_ = u[8];
  credit_grants_ = u[9];
  abandoned_ = u[10];
  credit_stalls_ = u[11];
  credit_stall_time_ = SimTime::ns(stall_ns);
  max_occupancy_ = static_cast<int>(max_occ);
  return Status();
}

}  // namespace sccpipe
