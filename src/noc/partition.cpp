#include "sccpipe/noc/partition.hpp"

#include <algorithm>

namespace sccpipe {

MeshPartition::MeshPartition(MeshLayout layout, int regions)
    : layout_(layout), topo_(layout) {
  SCCPIPE_CHECK_MSG(regions >= 1, "partition needs >= 1 region");
  regions_ = std::min(regions, layout_.width);
  column_region_.resize(static_cast<std::size_t>(layout_.width));
  // Balanced bands, wider ones first: column x belongs to the band
  // floor(x * R / W) — contiguous, monotone, widths differ by at most one.
  for (int x = 0; x < layout_.width; ++x) {
    column_region_[static_cast<std::size_t>(x)] =
        static_cast<int>(static_cast<long long>(x) * regions_ /
                         layout_.width);
  }
}

int MeshPartition::region_of_column(int x) const {
  SCCPIPE_CHECK_MSG(x >= 0 && x < layout_.width,
                    "column " << x << " of " << layout_.width);
  return column_region_[static_cast<std::size_t>(x)];
}

int MeshPartition::region_of_tile(TileId tile) const {
  return region_of_coord(topo_.coord_of(tile));
}

int MeshPartition::region_of_core(CoreId core) const {
  return region_of_tile(topo_.tile_of(core));
}

int MeshPartition::region_of_mc(McId mc) const {
  return region_of_coord(topo_.mc_position(mc));
}

int MeshPartition::tiles_in_region(int region) const {
  SCCPIPE_CHECK_MSG(region >= 0 && region < regions_,
                    "region " << region << " of " << regions_);
  int columns = 0;
  for (const int r : column_region_) columns += r == region ? 1 : 0;
  return columns * layout_.height;
}

int MeshPartition::band_distance(int a, int b) const {
  SCCPIPE_CHECK_MSG(a >= 0 && a < regions_ && b >= 0 && b < regions_,
                    "band_distance(" << a << ", " << b << ") of " << regions_);
  if (a == b) return 0;
  // Bands are contiguous column ranges, so the closest pair of tiles is
  // the facing pair across the gap: |nearest column of a - nearest column
  // of b| router hops (X-then-Y routing, same row).
  int last_a = -1, first_a = layout_.width;
  int last_b = -1, first_b = layout_.width;
  for (int x = 0; x < layout_.width; ++x) {
    const int r = column_region_[static_cast<std::size_t>(x)];
    if (r == a) {
      first_a = std::min(first_a, x);
      last_a = x;
    } else if (r == b) {
      first_b = std::min(first_b, x);
      last_b = x;
    }
  }
  SCCPIPE_CHECK_MSG(last_a >= 0 && last_b >= 0,
                    "band_distance over an unmapped band");
  return last_a < first_b ? first_b - last_a : first_a - last_b;
}

int MeshPartition::min_boundary_hops() const {
  if (regions_ == 1) return 1;
  // Bands are contiguous columns, so the closest inter-region pair is a
  // pair of horizontally adjacent tiles across a band boundary: 1 hop.
  return 1;
}

}  // namespace sccpipe
