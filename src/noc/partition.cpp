#include "sccpipe/noc/partition.hpp"

#include <algorithm>

namespace sccpipe {

MeshPartition::MeshPartition(MeshLayout layout, int regions)
    : layout_(layout), topo_(layout) {
  SCCPIPE_CHECK_MSG(regions >= 1, "partition needs >= 1 region");
  regions_ = std::min(regions, layout_.width);
  column_region_.resize(static_cast<std::size_t>(layout_.width));
  // Balanced bands, wider ones first: column x belongs to the band
  // floor(x * R / W) — contiguous, monotone, widths differ by at most one.
  for (int x = 0; x < layout_.width; ++x) {
    column_region_[static_cast<std::size_t>(x)] =
        static_cast<int>(static_cast<long long>(x) * regions_ /
                         layout_.width);
  }
}

int MeshPartition::region_of_column(int x) const {
  SCCPIPE_CHECK_MSG(x >= 0 && x < layout_.width,
                    "column " << x << " of " << layout_.width);
  return column_region_[static_cast<std::size_t>(x)];
}

int MeshPartition::region_of_tile(TileId tile) const {
  return region_of_coord(topo_.coord_of(tile));
}

int MeshPartition::region_of_core(CoreId core) const {
  return region_of_tile(topo_.tile_of(core));
}

int MeshPartition::region_of_mc(McId mc) const {
  return region_of_coord(topo_.mc_position(mc));
}

int MeshPartition::tiles_in_region(int region) const {
  SCCPIPE_CHECK_MSG(region >= 0 && region < regions_,
                    "region " << region << " of " << regions_);
  int columns = 0;
  for (const int r : column_region_) columns += r == region ? 1 : 0;
  return columns * layout_.height;
}

int MeshPartition::min_boundary_hops() const {
  if (regions_ == 1) return 1;
  // Bands are contiguous columns, so the closest inter-region pair is a
  // pair of horizontally adjacent tiles across a band boundary: 1 hop.
  return 1;
}

}  // namespace sccpipe
