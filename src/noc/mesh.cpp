#include "sccpipe/noc/mesh.hpp"

#include <string>

namespace sccpipe {

MeshModel::MeshModel(const MeshTopology& topo, MeshTimingConfig cfg)
    : topo_(topo), cfg_(cfg) {
  SCCPIPE_CHECK(cfg_.link_bandwidth_bytes_per_sec > 0.0);
  const int n = topo_.link_index_count();
  links_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    links_.emplace_back("link" + std::to_string(i));
  }
  traffic_.resize(static_cast<std::size_t>(n));
}

SimTime MeshModel::transfer(SimTime start, TileCoord from, TileCoord to,
                            double bytes) {
  SCCPIPE_CHECK(bytes >= 0.0);
  const auto route = topo_.route(from, to);
  const SimTime serialisation =
      SimTime::sec(bytes / cfg_.link_bandwidth_bytes_per_sec);
  const bool faulty = fault_ != nullptr && fault_->enabled();
  // Injection router always charges once, even for a local (same-tile) hop.
  SimTime t = start + (faulty ? cfg_.router_latency *
                                    fault_->router_slowdown(topo_.tile_at(from), start)
                              : cfg_.router_latency);
  for (const LinkId& link : route) {
    const auto idx = static_cast<std::size_t>(topo_.link_index(link));
    const SimTime before = t;
    SimTime service = serialisation;
    SimTime hop_latency = cfg_.router_latency;
    if (faulty) {
      // A message at a dead link waits the outage out (link-layer
      // retransmission at degraded timing — delivery stays guaranteed);
      // a degraded link stretches serialisation; a degraded router
      // stretches the per-hop forwarding latency.
      t = fault_->link_available(static_cast<int>(idx), t);
      service = service * fault_->link_slowdown(static_cast<int>(idx), t);
      hop_latency = hop_latency *
                    fault_->router_slowdown(topo_.tile_at(link.from), t);
    }
    t = links_[idx].acquire(t, service) + hop_latency;
    LinkTraffic& tr = traffic_[idx];
    ++tr.messages;
    tr.bytes += bytes;
    // queue_delay here is time spent waiting for the link beyond pure
    // serialisation + router latency.
    const SimTime pure = serialisation + cfg_.router_latency;
    tr.queue_delay += (t - before) - pure;
  }
  return t;
}

SimTime MeshModel::ideal_latency(TileCoord from, TileCoord to,
                                 double bytes) const {
  const int hops = topo_.hop_distance(from, to);
  const SimTime serialisation =
      SimTime::sec(bytes / cfg_.link_bandwidth_bytes_per_sec);
  return cfg_.router_latency * static_cast<double>(hops + 1) +
         serialisation * static_cast<double>(hops);
}

const LinkTraffic& MeshModel::traffic(const LinkId& link) const {
  return traffic_[static_cast<std::size_t>(topo_.link_index(link))];
}

double MeshModel::total_bytes() const {
  double sum = 0.0;
  for (const LinkTraffic& t : traffic_) sum += t.bytes;
  return sum;
}

}  // namespace sccpipe
