#include "sccpipe/noc/mesh.hpp"

#include <string>

namespace sccpipe {

MeshModel::MeshModel(const MeshTopology& topo, MeshTimingConfig cfg)
    : topo_(topo), cfg_(cfg) {
  SCCPIPE_CHECK(cfg_.link_bandwidth_bytes_per_sec > 0.0);
  const int n = topo_.link_index_count();
  links_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    links_.emplace_back("link" + std::to_string(i));
  }
  traffic_.resize(static_cast<std::size_t>(n));
}

SimTime MeshModel::transfer(SimTime start, TileCoord from, TileCoord to,
                            double bytes) {
  SCCPIPE_CHECK(bytes >= 0.0);
  const SimTime serialisation =
      SimTime::sec(bytes / cfg_.link_bandwidth_bytes_per_sec);
  const bool faulty = fault_ != nullptr && fault_->enabled();
  // Injection router always charges once, even for a local (same-tile) hop.
  SimTime t = start + (faulty ? cfg_.router_latency *
                                    fault_->router_slowdown(topo_.tile_at(from), start)
                              : cfg_.router_latency);
  // Dimension-ordered X-then-Y walk over the same directed links route()
  // would return, but without materialising the route: the dense link index
  // is tile * 4 + dir, and the tile id steps by ±1 / ±width per hop.
  // queue_delay is time waiting for the link beyond the pure
  // serialisation + router latency cost (invariant across hops).
  const SimTime pure = serialisation + cfg_.router_latency;
  const int width = topo_.layout().width;
  int tile = from.y * width + from.x;
  const auto hop = [&](Direction dir) {
    const auto idx = static_cast<std::size_t>(tile * 4 + static_cast<int>(dir));
    const SimTime before = t;
    SimTime service = serialisation;
    SimTime hop_latency = cfg_.router_latency;
    if (faulty) {
      // A message at a dead link waits the outage out (link-layer
      // retransmission at degraded timing — delivery stays guaranteed);
      // a degraded link stretches serialisation; a degraded router or a
      // planned degraded-link fate stretches the per-hop forwarding
      // latency. Latency only ever inflates, so the parallel engine's
      // lookahead floor (built from un-degraded transit) stays valid.
      t = fault_->link_available(static_cast<int>(idx), t);
      service = service * fault_->link_slowdown(static_cast<int>(idx), t);
      hop_latency = hop_latency * fault_->router_slowdown(tile, t) *
                    fault_->link_latency_factor(static_cast<int>(idx), t);
    }
    t = links_[idx].acquire(t, service) + hop_latency;
    LinkTraffic& tr = traffic_[idx];
    ++tr.messages;
    tr.bytes += bytes;
    tr.queue_delay += (t - before) - pure;
  };
  for (int x = from.x; x < to.x; ++x, ++tile) hop(Direction::East);
  for (int x = from.x; x > to.x; --x, --tile) hop(Direction::West);
  for (int y = from.y; y < to.y; ++y, tile += width) hop(Direction::South);
  for (int y = from.y; y > to.y; --y, tile -= width) hop(Direction::North);
  return t;
}

SimTime MeshModel::ideal_latency(TileCoord from, TileCoord to,
                                 double bytes) const {
  const int hops = topo_.hop_distance(from, to);
  const SimTime serialisation =
      SimTime::sec(bytes / cfg_.link_bandwidth_bytes_per_sec);
  return cfg_.router_latency * static_cast<double>(hops + 1) +
         serialisation * static_cast<double>(hops);
}

const LinkTraffic& MeshModel::traffic(const LinkId& link) const {
  return traffic_[static_cast<std::size_t>(topo_.link_index(link))];
}

double MeshModel::total_bytes() const {
  double sum = 0.0;
  for (const LinkTraffic& t : traffic_) sum += t.bytes;
  return sum;
}

}  // namespace sccpipe
