#include "sccpipe/noc/fabric.hpp"

#include <utility>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

namespace {

/// Tile the calling thread's current event belongs to; -1 = not inside a
/// fabric-dispatched callback (resolved to the bridge site).
thread_local TileId t_site = -1;

/// RAII site marker around a fabric-dispatched callback.
struct SiteScope {
  TileId prev;
  explicit SiteScope(TileId site) : prev(t_site) { t_site = site; }
  ~SiteScope() { t_site = prev; }
  SiteScope(const SiteScope&) = delete;
  SiteScope& operator=(const SiteScope&) = delete;
};

}  // namespace

RegionFabric::RegionFabric(ParallelSimulator& engine,
                           const MeshPartition& partition, SimTime hop_latency)
    : engine_(engine),
      partition_(partition),
      topo_(partition.layout()),
      hop_latency_(hop_latency) {
  SCCPIPE_CHECK_MSG(engine.regions() == partition.regions(),
                    "engine has " << engine.regions() << " regions, partition "
                                  << partition.regions());
  SCCPIPE_CHECK_MSG(hop_latency > SimTime::zero(),
                    "fabric needs a positive hop latency");
  bridge_ = topo_.tile_at(TileCoord{0, partition.layout().height - 1});
  site_region_.resize(static_cast<std::size_t>(topo_.tile_count()));
  for (TileId t = 0; t < topo_.tile_count(); ++t) {
    site_region_[static_cast<std::size_t>(t)] = partition_.region_of_tile(t);
  }
  site_counter_.assign(static_cast<std::size_t>(topo_.tile_count()), 0);
  // Calibrated per-channel lookahead: band distance in router hops. Every
  // located post from band a to band b crosses at least that many columns,
  // so transit() can never undercut the channel's lookahead.
  for (int a = 0; a < partition_.regions(); ++a) {
    for (int b = 0; b < partition_.regions(); ++b) {
      if (a == b) continue;
      engine_.set_lookahead(a, b, partition_.lookahead(hop_latency, a, b));
    }
  }
}

TileId RegionFabric::current_site() const {
  return t_site >= 0 ? t_site : bridge_;
}

SimTime RegionFabric::transit(TileId from, TileId to) const {
  return hop_latency_ *
         static_cast<double>(
             topo_.hop_distance(topo_.coord_of(from), topo_.coord_of(to)));
}

SimTime RegionFabric::now() const {
  const int r = ParallelSimulator::current_region();
  if (r >= 0) return engine_.region(r).now();
  return engine_.region(region_of(current_site())).now();
}

std::uint64_t RegionFabric::next_rank(TileId from_site) {
  std::uint64_t& counter = site_counter_[static_cast<std::size_t>(from_site)];
  // Counter-major: at equal delivery times, earlier posts from any one
  // site precede later ones, and ties across sites break by site id.
  return counter++ * static_cast<std::uint64_t>(topo_.tile_count()) +
         static_cast<std::uint64_t>(from_site);
}

void RegionFabric::dispatch(TileId site, SimTime when, FabricCallback fn) {
  const std::uint64_t rank = next_rank(current_site());
  const int dst = region_of(site);
  auto wrapped = [this, site, f = std::move(fn)]() mutable {
    SiteScope scope(site);
    f();
  };
  if (in_run()) {
    engine_.post(dst, when, rank, std::move(wrapped));
  } else {
    // Setup/collection phase: the engine is not running, so the caller is
    // single-threaded and may schedule on any region directly.
    engine_.region(dst).schedule_at_ranked(when, rank, std::move(wrapped));
  }
}

void RegionFabric::hop(TileId to, FabricCallback fn) {
  dispatch(to, now() + transit(current_site(), to), std::move(fn));
}

void RegionFabric::post_at(TileId to, SimTime when, FabricCallback fn) {
  SCCPIPE_CHECK_MSG(when >= now() + transit(current_site(), to),
                    "post_at(" << when.to_string()
                               << ") undercuts the transit time from site "
                               << current_site() << " to " << to);
  dispatch(to, when, std::move(fn));
}

void RegionFabric::after(SimTime delay, FabricCallback fn) {
  dispatch(current_site(), now() + delay, std::move(fn));
}

}  // namespace sccpipe
