#include "sccpipe/noc/traffic.hpp"

#include <memory>
#include <vector>

#include "sccpipe/noc/partition.hpp"
#include "sccpipe/support/rng.hpp"

namespace sccpipe {

namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm{a ^ (b * 0x9e3779b97f4a7c15ULL)};
  return sm.next();
}

/// Where a tile schedules its own work and delivers messages. The model is
/// written once against this seam; the two engines differ only here.
class Fabric {
 public:
  virtual ~Fabric() = default;
  /// Schedule \p fn at absolute \p when on the region owning \p tile.
  virtual void at(TileId tile, SimTime when, SimCallback fn) = 0;
};

class SerialFabric final : public Fabric {
 public:
  explicit SerialFabric(std::size_t size_hint) : sim_(size_hint) {}
  void at(TileId, SimTime when, SimCallback fn) override {
    sim_.schedule_at(when, std::move(fn));
  }
  Simulator& sim() { return sim_; }

 private:
  Simulator sim_;
};

class PartitionedFabric final : public Fabric {
 public:
  PartitionedFabric(const MeshPartition& part, int jobs, SimTime lookahead,
                    std::size_t size_hint)
      : part_(part),
        engine_(part.regions(), jobs, lookahead, size_hint) {}
  void at(TileId tile, SimTime when, SimCallback fn) override {
    engine_.post(part_.region_of_tile(tile), when, std::move(fn));
  }
  ParallelSimulator& engine() { return engine_; }

 private:
  const MeshPartition& part_;
  ParallelSimulator engine_;
};

/// Per-tile actor state. Only callbacks running on the tile's region touch
/// it; the accumulator is commutative (wrapping add) so same-timestamp
/// arrival order is irrelevant. Padded to a cache line to keep neighbouring
/// tiles' updates from false-sharing across worker threads.
struct alignas(64) TileState {
  std::uint64_t accum = 0;
  std::uint64_t messages = 0;
};

class TrafficModel {
 public:
  TrafficModel(const TrafficConfig& cfg, Fabric& fabric)
      : cfg_(cfg), topo_(cfg.layout), fabric_(fabric) {
    SCCPIPE_CHECK_MSG(topo_.tile_count() >= 2,
                      "traffic needs >= 2 tiles, got " << topo_.tile_count());
    SCCPIPE_CHECK(cfg_.ticks >= 1 && cfg_.send_every >= 1);
    SCCPIPE_CHECK(cfg_.tick_spacing > SimTime::zero());
    SCCPIPE_CHECK(cfg_.hop_latency > SimTime::zero());
    tiles_.resize(static_cast<std::size_t>(topo_.tile_count()));
  }

  void start() {
    for (TileId t = 0; t < topo_.tile_count(); ++t) {
      schedule_tick(t, 0);
    }
  }

  TrafficResult collect(std::uint64_t events, std::int64_t end_ns) const {
    TrafficResult r;
    r.events = events;
    r.end_time_ns = end_ns;
    r.digest = 0xcbf29ce484222325ULL;
    for (const TileState& ts : tiles_) {
      r.digest = mix(r.digest, ts.accum);
      r.messages += ts.messages;
    }
    r.digest = mix(r.digest, r.messages);
    return r;
  }

 private:
  void schedule_tick(TileId tile, int k) {
    const SimTime when =
        SimTime::ns(cfg_.tick_spacing.to_ns() * (static_cast<std::int64_t>(k) + 1));
    fabric_.at(tile, when, [this, tile, k, when] { tick(tile, k, when); });
  }

  void tick(TileId tile, int k, SimTime now) {
    TileState& ts = tiles_[static_cast<std::size_t>(tile)];
    ts.accum += mix(cfg_.seed ^ static_cast<std::uint64_t>(tile),
                    static_cast<std::uint64_t>(k));
    if (k % cfg_.send_every == 0) {
      const std::uint64_t payload =
          mix(mix(cfg_.seed, static_cast<std::uint64_t>(tile)),
              static_cast<std::uint64_t>(k));
      ++ts.messages;
      send(tile, payload, cfg_.ttl, now);
    }
    if (k + 1 < cfg_.ticks) schedule_tick(tile, k + 1);
  }

  /// Route a message from \p src to the payload-derived peer. Delivery
  /// costs hop_latency per router hop; dst != src so the delay is at least
  /// one hop — i.e. at least the engine lookahead.
  void send(TileId src, std::uint64_t payload, int ttl, SimTime now) {
    const TileId dst = peer_of(src, payload);
    const int hops =
        topo_.hop_distance(topo_.coord_of(src), topo_.coord_of(dst));
    const SimTime when =
        now + SimTime::ns(cfg_.hop_latency.to_ns() * hops);
    fabric_.at(dst, when,
               [this, dst, payload, ttl, when] {
                 receive(dst, payload, ttl, when);
               });
  }

  void receive(TileId tile, std::uint64_t payload, int ttl, SimTime now) {
    TileState& ts = tiles_[static_cast<std::size_t>(tile)];
    ts.accum += mix(payload, static_cast<std::uint64_t>(now.to_ns()));
    if (ttl <= 0) return;
    const std::uint64_t next = mix(payload, 0x2545f4914f6cdd1dULL);
    ++ts.messages;
    send(tile, next, ttl - 1, now);
  }

  TileId peer_of(TileId tile, std::uint64_t h) const {
    const auto n = static_cast<std::uint64_t>(topo_.tile_count());
    return static_cast<TileId>(
        (static_cast<std::uint64_t>(tile) + 1 + h % (n - 1)) % n);
  }

  const TrafficConfig cfg_;
  MeshTopology topo_;
  Fabric& fabric_;
  std::vector<TileState> tiles_;
};

std::size_t size_hint_for(const TrafficConfig& cfg) {
  // Every tile keeps ~1 tick + a handful of in-flight messages pending.
  return static_cast<std::size_t>(cfg.layout.width) *
             static_cast<std::size_t>(cfg.layout.height) * 8 +
         Simulator::kDefaultSizeHint;
}

}  // namespace

TrafficResult run_traffic_serial(const TrafficConfig& cfg) {
  SerialFabric fabric{size_hint_for(cfg)};
  TrafficModel model{cfg, fabric};
  model.start();
  const SimTime end = fabric.sim().run();
  return model.collect(fabric.sim().dispatched(), end.to_ns());
}

TrafficResult run_traffic_parallel(const TrafficConfig& cfg) {
  const MeshPartition part{cfg.layout, cfg.regions};
  PartitionedFabric fabric{part, cfg.jobs, part.lookahead(cfg.hop_latency),
                           size_hint_for(cfg)};
  TrafficModel model{cfg, fabric};
  model.start();
  const SimTime end = fabric.engine().run();
  TrafficResult r =
      model.collect(fabric.engine().dispatched(), end.to_ns());
  r.engine = fabric.engine().stats();
  return r;
}

}  // namespace sccpipe
