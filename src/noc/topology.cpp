#include "sccpipe/noc/topology.hpp"

#include <cstdlib>

namespace sccpipe {

MeshTopology::MeshTopology(MeshLayout layout) : layout_(std::move(layout)) {
  SCCPIPE_CHECK(layout_.width > 0 && layout_.height > 0);
  SCCPIPE_CHECK(layout_.cores_per_tile > 0);
  SCCPIPE_CHECK(!layout_.mc_positions.empty());
  for (const TileCoord& mc : layout_.mc_positions) {
    SCCPIPE_CHECK_MSG(mc.x >= 0 && mc.x < layout_.width && mc.y >= 0 &&
                          mc.y < layout_.height,
                      "MC position (" << mc.x << ',' << mc.y
                                      << ") outside mesh");
  }
  const auto n_tiles = static_cast<std::size_t>(tile_count());
  tile_home_mc_.reserve(n_tiles);
  tile_home_hops_.reserve(n_tiles);
  for (TileId t = 0; t < tile_count(); ++t) {
    const TileCoord c = coord_of(t);
    McId best = 0;
    int best_dist = hop_distance(c, layout_.mc_positions[0]);
    for (McId m = 1; m < mc_count(); ++m) {
      const int d =
          hop_distance(c, layout_.mc_positions[static_cast<std::size_t>(m)]);
      if (d < best_dist) {
        best = m;
        best_dist = d;
      }
    }
    tile_home_mc_.push_back(best);
    tile_home_hops_.push_back(best_dist);
  }
}

TileId MeshTopology::tile_of(CoreId core) const {
  SCCPIPE_CHECK_MSG(valid_core(core), "core " << core);
  return core / layout_.cores_per_tile;
}

TileCoord MeshTopology::coord_of(TileId tile) const {
  SCCPIPE_CHECK(tile >= 0 && tile < tile_count());
  return TileCoord{tile % layout_.width, tile / layout_.width};
}

TileId MeshTopology::tile_at(TileCoord c) const {
  SCCPIPE_CHECK(c.x >= 0 && c.x < layout_.width && c.y >= 0 &&
                c.y < layout_.height);
  return c.y * layout_.width + c.x;
}

TileCoord MeshTopology::mc_position(McId mc) const {
  SCCPIPE_CHECK(mc >= 0 && mc < mc_count());
  return layout_.mc_positions[static_cast<std::size_t>(mc)];
}

McId MeshTopology::home_mc(CoreId core) const {
  return tile_home_mc_[static_cast<std::size_t>(tile_of(core))];
}

int MeshTopology::home_mc_hops(CoreId core) const {
  return tile_home_hops_[static_cast<std::size_t>(tile_of(core))];
}

int MeshTopology::hop_distance(TileCoord a, TileCoord b) const {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

std::vector<LinkId> MeshTopology::route(TileCoord from, TileCoord to) const {
  std::vector<LinkId> links;
  links.reserve(static_cast<std::size_t>(hop_distance(from, to)));
  TileCoord cur = from;
  while (cur.x != to.x) {
    const Direction d = cur.x < to.x ? Direction::East : Direction::West;
    links.push_back(LinkId{cur, d});
    cur.x += cur.x < to.x ? 1 : -1;
  }
  while (cur.y != to.y) {
    const Direction d = cur.y < to.y ? Direction::South : Direction::North;
    links.push_back(LinkId{cur, d});
    cur.y += cur.y < to.y ? 1 : -1;
  }
  return links;
}

int MeshTopology::link_index(const LinkId& link) const {
  const TileId tile = tile_at(link.from);
  return tile * 4 + static_cast<int>(link.dir);
}

}  // namespace sccpipe
