// Figure 13 — "Rendering time with the Mogon Cluster." The same pipeline
// code on a modern 64-core HPC node: external renderer (frames arrive from
// another node), single renderer, and one renderer per pipeline. The
// cluster is several times faster than the SCC system; the external-
// renderer configuration plateaus early on its inter-node feed.

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Figure 13 — Mogon HPC cluster node, three renderer configurations",
      "paper: external 32->18 s, single 26->4 s, parallel 25->4 s");

  TextTable table({"configuration", "1 pl.", "2 pl.", "3 pl.", "4 pl.",
                   "5 pl.", "6 pl.", "7 pl."});
  SvgPlot plot("Fig. 13 — Mogon HPC cluster node", "number of pipelines", "time in sec");
  add_sweep_rows(table, {"external renderer", Scenario::HostRenderer,
                         Arrangement::Ordered, PlatformKind::Cluster,
                         {32, 24, 20, 20, 19, 20, 18}}, 7, &plot);
  add_sweep_rows(table, {"single renderer", Scenario::SingleRenderer,
                         Arrangement::Ordered, PlatformKind::Cluster,
                         {26, 14, 10, 7, 6, 5, 4}}, 7, &plot);
  add_sweep_rows(table, {"parallel renderer", Scenario::RendererPerPipeline,
                         Arrangement::Ordered, PlatformKind::Cluster,
                         {25, 14, 10, 8, 6, 5, 4}}, 7, &plot);
  std::printf("%s\n", table.to_string().c_str());
  write_figure(plot, "fig13_hpc_cluster");

  // Paper: "Using seven pipelines, the cluster is 13.5 times faster than
  // the SCC system."
  RunConfig scc;
  scc.scenario = Scenario::RendererPerPipeline;
  scc.pipelines = 7;
  RunConfig hpc = scc;
  hpc.platform = PlatformKind::Cluster;
  std::printf("cluster vs SCC at k=7 (parallel renderers): %.1fx faster "
              "(paper: 13.5x)\n",
              run(scc).walkthrough.to_sec() / run(hpc).walkthrough.to_sec());
  return 0;
}
