// Google-benchmark microbenchmarks of the render substrate: octree build,
// frustum culling, strip estimation and full rasterization.

#include <benchmark/benchmark.h>

#include "sccpipe/render/renderer.hpp"
#include "sccpipe/scene/city.hpp"

namespace {

using namespace sccpipe;

const Mesh& city() {
  static const Mesh mesh = generate_city();
  return mesh;
}

const Octree& octree() {
  static const Octree tree{city()};
  return tree;
}

void BM_OctreeBuild(benchmark::State& state) {
  for (auto _ : state) {
    Octree tree(city());
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.counters["triangles"] = static_cast<double>(city().size());
}
BENCHMARK(BM_OctreeBuild)->Unit(benchmark::kMillisecond);

void BM_FrustumCull(benchmark::State& state) {
  const CameraConfig cam;
  const WalkthroughPath path(city().bounds(), 40);
  int frame = 0;
  std::vector<std::uint32_t> visible;
  for (auto _ : state) {
    visible.clear();
    const Mat4 vp =
        strip_projection(cam, 400, 400, {0, 400}) * path.view(frame);
    octree().cull(Frustum(vp), visible);
    benchmark::DoNotOptimize(visible.size());
    frame = (frame + 1) % 40;
  }
}
BENCHMARK(BM_FrustumCull);

void BM_EstimateStrip(benchmark::State& state) {
  const CameraConfig cam;
  const Renderer renderer(city(), octree(), cam, 400, 400);
  const WalkthroughPath path(city().bounds(), 40);
  const int k = static_cast<int>(state.range(0));
  const auto strips = divide_rows(400, k);
  int frame = 0;
  for (auto _ : state) {
    const RenderStats st = renderer.estimate_strip(
        path.view(frame), strips[static_cast<std::size_t>(frame) % strips.size()]);
    benchmark::DoNotOptimize(st.projected_pixels);
    frame = (frame + 1) % 40;
  }
}
BENCHMARK(BM_EstimateStrip)->Arg(1)->Arg(7);

void BM_RenderFrame(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const CameraConfig cam;
  const Renderer renderer(city(), octree(), cam, side, side);
  const WalkthroughPath path(city().bounds(), 40);
  int frame = 0;
  for (auto _ : state) {
    const Image img = renderer.render(path.view(frame));
    benchmark::DoNotOptimize(img.data());
    frame = (frame + 1) % 40;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RenderFrame)->Arg(120)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
