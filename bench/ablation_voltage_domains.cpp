// Ablation (beyond the paper) — the real silicon's voltage granularity.
// The paper's §VI-D experiment assumes an isolated *tile* can be raised to
// 1.3 V (Fig. 18); on the actual SCC the supply is shared by a 2x2-tile
// domain of eight cores. This bench reruns the Fig. 16/17 experiment under
// both granularities: the speed-up is identical, but the power bill of the
// 800 MHz blur is larger when the whole domain's voltage must follow.

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Ablation — per-tile vs 2x2-domain voltage (the SCC's real supply)",
      "paper assumed a lone 1.3 V tile; silicon couples eight cores");

  TextTable table({"granularity", "blur MHz", "tail MHz", "time [s]",
                   "mean [W]", "energy [J]"});
  const double scale = World::instance().scale();
  for (const bool quad : {false, true}) {
    for (const auto& [blur, tail] :
         {std::pair{0, 0}, std::pair{800, 0}, std::pair{800, 400}}) {
      RunConfig cfg;
      cfg.scenario = Scenario::HostRenderer;
      cfg.pipelines = 1;
      cfg.isolate_blur_tile = true;
      cfg.blur_mhz = blur;
      cfg.tail_mhz = tail;
      cfg.overrides.quad_tile_voltage_domains = quad;
      const RunResult r = run(cfg);
      table.row()
          .add(quad ? "2x2 domain (real)" : "per tile (paper)")
          .add(blur == 0 ? 533 : blur)
          .add(tail == 0 ? 533 : tail)
          .add(r.walkthrough.to_sec() * scale, 1)
          .add(r.mean_chip_watts, 1)
          .add(r.chip_energy_joules * scale, 0);
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "same walkthrough times, different wattage: under the real domain\n"
      "granularity the blur boost drags three idle-ish tiles to 1.3 V, so\n"
      "the paper's \"4-5 additional watts\" is the optimistic bound.\n");
  return 0;
}
