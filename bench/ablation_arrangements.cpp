// Ablation (beyond the paper) — when WOULD the arrangement matter? The
// paper found the §IV-A arrangements performance-neutral and blamed the
// missing local memory: all traffic detours through the four memory
// controllers, so link-level placement is irrelevant. This bench tests
// that explanation from both sides:
//
//  (a) constrain the mesh links on the SCC as built — the arrangements
//      STAY equal, because the dominant traffic is the core<->controller
//      bounce whose route length placement barely changes;
//  (b) constrain the links on the hypothetical local-store SCC, where
//      hand-offs travel core-to-core — NOW the inter-stage distances the
//      arrangements control become visible.
//
// Together: the DRAM bounce is exactly why placement never mattered.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Ablation — arrangement sensitivity under a constrained mesh",
      "paper's explanation of the null result: the DRAM bounce, not the "
      "links, dominates");

  for (const bool local_banks : {false, true}) {
    std::printf("%s\n", local_banks
                            ? "-- hypothetical local-store SCC (hand-offs "
                              "travel core-to-core):"
                            : "-- SCC as built (hand-offs bounce through the "
                              "memory controllers):");
    TextTable table({"link bandwidth", "unordered [s]", "ordered [s]",
                     "flipped [s]", "max spread [%]"});
    // Whole block as one batch (5 bandwidths x 3 arrangements) through the
    // parallel executor; results come back in config order.
    const std::vector<double> bws = {8.0e9, 1.0e8, 4.0e7, 1.5e7, 6.0e6};
    std::vector<RunConfig> cfgs;
    for (const double bw : bws) {
      for (const Arrangement a : {Arrangement::Unordered,
                                  Arrangement::Ordered, Arrangement::Flipped}) {
        RunConfig cfg;
        cfg.scenario = Scenario::RendererPerPipeline;
        cfg.pipelines = 7;
        cfg.arrangement = a;
        cfg.overrides.link_bandwidth_bytes_per_sec = bw;
        cfg.rcce.local_memory_banks = local_banks;
        cfgs.push_back(cfg);
      }
    }
    const std::vector<double> all_secs = run_batch_seconds(cfgs);
    for (std::size_t row = 0; row < bws.size(); ++row) {
      const double* secs = &all_secs[row * 3];
      const double lo = std::min({secs[0], secs[1], secs[2]});
      const double hi = std::max({secs[0], secs[1], secs[2]});
      char label[32];
      std::snprintf(label, sizeof label, "%.0f MB/s", bws[row] / 1e6);
      table.row()
          .add(label)
          .add(secs[0], 1)
          .add(secs[1], 1)
          .add(secs[2], 1)
          .add(100.0 * (hi - lo) / lo, 1);
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf(
      "as built, the spread stays small at every link speed: the dominant\n"
      "traffic is the core<->controller bounce, whose route length placement\n"
      "barely changes — the paper's explanation of its null result. Only on\n"
      "the local-store variant, where hand-offs travel between neighbouring\n"
      "cores, do the arrangements separate once links are starved.\n");
  return 0;
}
