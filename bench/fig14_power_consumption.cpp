// Figure 14 — "SCC power consumption increases linearly with the number of
// used pipelines." MCPC-renderer configuration; the paper plots power over
// time for 7..42 allocated cores (k = 1..8) and all three arrangements,
// showing flat traces whose level grows linearly with core count and does
// not depend on the arrangement.

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Figure 14 — SCC power vs time, MCPC renderer, 7..42 allocated cores",
      "paper: flat per-run traces, ~35-65 W band, linear in cores, "
      "arrangement-insensitive");

  // Mean power level per (cores, arrangement).
  TextTable table({"CPUs", "pipelines", "unordered [W]", "ordered [W]",
                   "flipped [W]"});
  for (int k = 1; k <= 7; ++k) {
    table.row().add(5 * k + 2).add(k);
    for (const Arrangement a : {Arrangement::Unordered, Arrangement::Ordered,
                                Arrangement::Flipped}) {
      RunConfig cfg;
      cfg.scenario = Scenario::HostRenderer;
      cfg.arrangement = a;
      cfg.pipelines = k;
      table.add(run(cfg).mean_chip_watts, 1);
    }
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Sampled traces (the figure's x axis: first 100 s of the run).
  SvgPlot plot("Fig. 14 — SCC power with MCPC rendering", "time in sec",
               "power in watt");
  plot.y_from_zero(false);
  for (int k = 1; k <= 7; k += 2) {
    RunConfig cfg;
    cfg.scenario = Scenario::HostRenderer;
    cfg.pipelines = k;
    const RunResult r = run(cfg);
    PlotSeries series;
    series.label = std::to_string(5 * k + 2) + " CPUs";
    series.markers = false;
    const SimTime end = min(r.walkthrough, SimTime::sec(100.0));
    for (SimTime t = SimTime::zero(); t + SimTime::sec(5) <= end;
         t += SimTime::sec(5)) {
      series.x.push_back((t + SimTime::sec(2.5)).to_sec());
      series.y.push_back(r.power_trace.integrate(t, t + SimTime::sec(5)) /
                         5.0);
    }
    if (k == 5) {
      std::printf("power trace, k=5 (27 CPUs), 5 s windows [W]:");
      for (const double w : series.y) std::printf(" %.1f", w);
      std::printf("\n(paper quotes ~50 W for this configuration, §VI-B)\n");
    }
    plot.add_series(std::move(series));
  }
  write_figure(plot, "fig14_power_consumption");

  // Linearity check: fit watts = a + b * cores across k.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (int k = 1; k <= 7; ++k) {
    RunConfig c;
    c.scenario = Scenario::HostRenderer;
    c.pipelines = k;
    const double cores = 5.0 * k + 2.0;
    const double watts = run(c).mean_chip_watts;
    sx += cores;
    sy += watts;
    sxx += cores * cores;
    sxy += cores * watts;
    ++n;
  }
  const double b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double a = (sy - b * sx) / n;
  std::printf("linear fit: P ~= %.1f W + %.2f W/core (paper model: idle+uncore "
              "plus ~0.7 W per spinning core)\n",
              a, b);
  return 0;
}
