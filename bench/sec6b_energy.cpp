// §VI-B — energy comparison of the two best configurations. The paper:
// hybrid (MCPC renders, 5 pipelines) consumes 3.3 s * 28 W on the host
// plus 51 s * 50 W on the SCC = 2642 J, against the all-SCC n-renderer
// system at 58 s * 58 W = 3364 J — "it is reasonable to use the hybrid
// MCPC and SCC approach in long running applications".

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner("Section VI-B — energy: hybrid (MCPC+SCC) vs all-SCC",
               "paper: hybrid 2642 J vs n-renderer 3364 J");
  const double scale = World::instance().scale();

  RunConfig hybrid;
  hybrid.scenario = Scenario::HostRenderer;
  hybrid.pipelines = 5;

  RunConfig allscc;
  allscc.scenario = Scenario::RendererPerPipeline;
  allscc.pipelines = 7;

  // Both systems simulate concurrently on the parallel executor.
  const std::vector<RunResult> results = run_batch({hybrid, allscc});
  const RunResult& h = results[0];
  const RunResult& s = results[1];

  TextTable table({"system", "time [s]", "SCC mean [W]", "SCC E [J]",
                   "host busy [s]", "host extra E [J]", "total E [J]",
                   "paper [J]"});
  table.row()
      .add("hybrid (MCPC k=5)")
      .add(h.walkthrough.to_sec() * scale, 1)
      .add(h.mean_chip_watts, 1)
      .add(h.chip_energy_joules * scale, 0)
      .add(h.host_busy_sec * scale, 2)
      .add(h.host_extra_energy_joules * scale, 0)
      .add((h.chip_energy_joules + h.host_extra_energy_joules) * scale, 0)
      .add(2642.0, 0);
  table.row()
      .add("all-SCC (n rend. k=7)")
      .add(s.walkthrough.to_sec() * scale, 1)
      .add(s.mean_chip_watts, 1)
      .add(s.chip_energy_joules * scale, 0)
      .add(0.0, 2)
      .add(0.0, 0)
      .add(s.chip_energy_joules * scale, 0)
      .add(3364.0, 0);
  std::printf("%s\n", table.to_string().c_str());

  const double he = (h.chip_energy_joules + h.host_extra_energy_joules) * scale;
  const double se = s.chip_energy_joules * scale;
  std::printf("hybrid saves %.0f%% energy (paper: ~21%%) — %s\n",
              100.0 * (1.0 - he / se),
              he < se ? "hybrid wins, as in the paper" : "MISMATCH");
  return 0;
}
