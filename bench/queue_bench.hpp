#pragma once

// Shared hold-pattern queue driver for the event-queue benchmarks
// (bench/micro_queue.cpp and the queue_ops_* rows of bench/perf_baseline).
//
// The driver isolates *queue operations* — schedule, cancel, dispatch —
// from everything else the engines do: it prefills N pending events
// (duplicate-heavy timestamps on a coarse grid, ~half carrying explicit
// ranks), then runs a steady-state pop-push churn where every dispatched
// event schedules one replacement, with a periodic cancel + re-arm mixed
// in. The pending population therefore *holds* at N throughout the
// measured window, so each tier probes the heap at a controlled depth
// (sift cost is log(N)) instead of the mixed depths an end-to-end run
// sees.
//
// Both engines (Simulator with the 4-ary key heap, reference::Scheduler
// with the binary AoS heap) consume the same deterministic RNG stream and
// dispatch in the same (time, rank, seq) order, so their op counts are
// cross-checked equal and the wall-clock ratio isolates queue layout.

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "sccpipe/support/check.hpp"
#include "sccpipe/support/rng.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe::bench {

/// Deterministic hold-pattern churn on one engine. Engine must expose
/// schedule_at / schedule_at_ranked / cancel / step / now (Simulator and
/// reference::Scheduler both qualify).
template <class Engine, class Handle>
struct QueueHoldDriver {
  Engine eng;
  Rng rng;
  std::uint64_t dispatched = 0;
  std::uint64_t cancels = 0;
  std::vector<Handle> armed;  // rotating cancellable-timeout pool
  std::uint64_t target = 0;

  explicit QueueHoldDriver(std::uint64_t seed) : rng(seed) {}

  /// One replacement event: coarse time grid (heavy same-timestamp
  /// collisions), ~half ranked — the distribution the partitioned
  /// engine's merged mail shows.
  void schedule_one() {
    const SimTime when =
        eng.now() + SimTime::ns(static_cast<std::int64_t>(1 + rng.below(64)) * 100);
    if (rng.below(2) == 0) {
      eng.schedule_at_ranked(when, rng.below(4), [this] { pump(); });
    } else {
      eng.schedule_at(when, [this] { pump(); });
    }
  }

  void pump() {
    ++dispatched;
    if (dispatched >= target) return;
    schedule_one();  // hold the pending population constant
    if ((dispatched & 7) == 0 && !armed.empty()) {
      // Retry-layer shape: cancel a pending timeout, arm a fresh one.
      const std::size_t idx = rng.below(armed.size());
      if (eng.cancel(armed[idx])) ++cancels;
      armed[idx] = eng.schedule_at(
          eng.now() + SimTime::ms(static_cast<double>(1 + rng.below(50))),
          [this] { pump(); });
    }
  }

  /// Prefill \p pending events, then dispatch until \p dispatches fire.
  /// Returns wall seconds of the measured churn (prefill excluded).
  template <class Now, class Seconds>
  double run(std::size_t pending, std::uint64_t dispatches, Now now_fn,
             Seconds seconds_since) {
    target = ~std::uint64_t{0};  // prefill callbacks must not early-out
    const std::size_t timeouts = pending / 8 + 1;
    for (std::size_t i = 0; i + timeouts < pending; ++i) schedule_one();
    armed.reserve(timeouts);
    for (std::size_t i = 0; i < timeouts; ++i) {
      armed.push_back(eng.schedule_at(
          eng.now() + SimTime::ms(static_cast<double>(1 + rng.below(50))),
          [this] { pump(); }));
    }
    target = dispatches;
    const auto t0 = now_fn();
    while (dispatched < target && eng.step()) {
    }
    SCCPIPE_CHECK(dispatched == target);
    return seconds_since(t0);
  }
};

/// Pull `"speedup": <num>` out of the metric object named \p name in a
/// perf-baseline JSON record (the format is ours, so a scan is enough).
/// Shared by perf_baseline --check and micro_queue --check.
inline std::optional<double> committed_metric_speedup(const std::string& json,
                                                      const std::string& name) {
  const std::string tag = "\"name\": \"" + name + "\"";
  std::size_t at = json.find(tag);
  if (at == std::string::npos) return std::nullopt;
  const std::string key = "\"speedup\": ";
  at = json.find(key, at);
  if (at == std::string::npos) return std::nullopt;
  return std::strtod(json.c_str() + at + key.size(), nullptr);
}

}  // namespace sccpipe::bench
