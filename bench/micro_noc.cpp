// Google-benchmark microbenchmarks of the simulation substrate itself:
// event throughput, mesh transfers, fair-share settling and RCCE
// rendezvous — the costs that bound how fast the figure harnesses run.

#include <benchmark/benchmark.h>

#include "sccpipe/rcce/rcce.hpp"

namespace {

using namespace sccpipe;

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 1000) sim.schedule_after(SimTime::ns(10), chain);
    };
    sim.schedule_after(SimTime::ns(10), chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventDispatch);

void BM_MeshTransfer(benchmark::State& state) {
  MeshTopology topo;
  MeshModel mesh(topo);
  SimTime t = SimTime::zero();
  for (auto _ : state) {
    t = mesh.transfer(t, {0, 0}, {5, 3}, 8192.0);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshTransfer);

void BM_RouteComputation(benchmark::State& state) {
  MeshTopology topo;
  for (auto _ : state) {
    const auto route = topo.route({0, 0}, {5, 3});
    benchmark::DoNotOptimize(route.size());
  }
}
BENCHMARK(BM_RouteComputation);

void BM_FairShareFlows(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    FairShareResource mc(sim, "mc", 1.0e9);
    int done = 0;
    for (int i = 0; i < 64; ++i) {
      mc.start_flow(1.0e5 + i, [&] { ++done; });
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FairShareFlows);

void BM_RcceRendezvous(benchmark::State& state) {
  const double bytes = static_cast<double>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    SccChip chip(sim);
    RcceComm comm(chip);
    int delivered = 0;
    for (int i = 0; i < 16; ++i) {
      comm.send(0, 2, bytes, [] {});
      comm.recv(2, 0, [&] { ++delivered; });
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_RcceRendezvous)->Arg(1024)->Arg(91 * 1024);

}  // namespace

BENCHMARK_MAIN();
