// Ablation (beyond the paper) — overload behaviour of the macro pipeline
// behind the reliable host transport. The paper feeds the chip from a
// closed loop (next frame starts when the previous one returns), so it
// never sees overload; this harness switches the host feeder to an open
// loop at 0.5x/1x/2x/4x the measured render capacity, with and without a
// lossy host link, and reports what the backpressure + shedding stack
// does: goodput should clamp to capacity, the frame ledger must balance,
// queues stay bounded, and latency saturates at the queue depth instead
// of growing without bound. Rows land in BENCH_overload.json for
// cross-PR comparison.

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

namespace {

struct Cell {
  double mult = 0.0;
  std::string plan;   // fault grammar, "" = clean link
  std::string label;  // table label for the plan
};

void write_overload_json(const std::vector<Cell>& cells,
                         const std::vector<RunConfig>& cfgs,
                         const std::vector<RunResult>& results,
                         double capacity_fps) {
  const char* path = "BENCH_overload.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sccpipe-bench-overload-v1\",\n");
  std::fprintf(f, "  \"tool\": \"ablation_overload\",\n");
  std::fprintf(f, "  \"capacity_fps\": %.3f,\n", capacity_fps);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TransportReport& t = results[i].transport;
    const double shed_fraction =
        t.frames_offered == 0
            ? 0.0
            : 1.0 - static_cast<double>(t.frames_delivered) /
                        static_cast<double>(t.frames_offered);
    std::fprintf(
        f,
        "    {\"load_mult\": %.2f, \"link\": \"%s\", "
        "\"offered_fps\": %.2f, \"goodput_fps\": %.2f, "
        "\"p50_latency_ms\": %.3f, \"p99_latency_ms\": %.3f, "
        "\"shed_fraction\": %.4f, \"offered\": %llu, \"delivered\": %llu, "
        "\"shed_admission\": %llu, \"shed_deadline\": %llu, "
        "\"shed_transport\": %llu, \"shed_breaker\": %llu, "
        "\"retransmissions\": %llu, \"max_feeder_queue\": %d, "
        "\"max_link_queue\": %d, \"max_stage_queue\": %d, "
        "\"completed\": %s}%s\n",
        cells[i].mult, cells[i].label.c_str(),
        cfgs[i].overload.offered_fps, t.goodput_fps, t.p50_latency_ms,
        t.p99_latency_ms, shed_fraction,
        static_cast<unsigned long long>(t.frames_offered),
        static_cast<unsigned long long>(t.frames_delivered),
        static_cast<unsigned long long>(t.shed_admission),
        static_cast<unsigned long long>(t.shed_deadline),
        static_cast<unsigned long long>(t.shed_transport),
        static_cast<unsigned long long>(t.shed_breaker),
        static_cast<unsigned long long>(t.retransmissions),
        t.max_feeder_queue, t.max_link_queue, t.max_stage_queue,
        results[i].fault.failed ? "false" : "true",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] overload record written: %s\n", path);
}

}  // namespace

int main() {
  print_banner(
      "Ablation — overload (open-loop offered load vs goodput/latency/shed)",
      "reliable host ARQ + credit backpressure + deadline shedding");

  // Measure the closed-loop render capacity first: the walkthrough with
  // the reliable transport enabled but no open-loop feeder runs exactly
  // as fast as the chip can drain frames.
  RunConfig base;
  base.scenario = Scenario::HostRenderer;
  base.pipelines = 4;
  base.fault.seed = 7;
  base.rcce.retry.max_attempts = 8;
  // The initial RTO must sit above one frame's serialisation time on the
  // host wire or every first send spuriously retransmits (and Karn's
  // algorithm then keeps the estimator from ever converging).
  base.rcce.retry.timeout = SimTime::ms(50);
  base.rcce.retry.backoff = SimTime::ms(1);
  base.overload.window = 8;
  base.overload.queue_depth = 4;

  const int frames = World::instance().frames();
  const RunResult closed = run(base);
  const double capacity_fps =
      static_cast<double>(frames) / closed.walkthrough.to_sec();
  std::printf("closed-loop capacity: %.2f simulated fps (%d frames)\n\n",
              capacity_fps, frames);

  // A frame that has waited longer than the whole feeder queue would take
  // to drain at capacity is already doomed; shed it instead of rendering.
  const SimTime deadline =
      SimTime::sec(2.0 * (base.overload.queue_depth + 1) / capacity_fps);

  const std::vector<double> mults = {0.5, 1.0, 2.0, 4.0};
  const char* chaos =
      "host-drop=0.10;reorder=0.05:2ms;duplicate=0.05:1ms";
  std::vector<Cell> cells;
  std::vector<RunConfig> cfgs;
  for (const double mult : mults) {
    for (int lossy = 0; lossy < 2; ++lossy) {
      Cell cell;
      cell.mult = mult;
      cell.plan = lossy ? chaos : "";
      cell.label = lossy ? "lossy" : "clean";
      RunConfig cfg = base;
      cfg.overload.offered_fps = mult * capacity_fps;
      cfg.overload.frame_deadline = deadline;
      if (lossy) {
        const Status st = cfg.fault.parse(cell.plan);
        if (!st.ok()) {
          std::fprintf(stderr, "bad plan: %s\n", st.to_string().c_str());
          return 1;
        }
        cfg.fault.seed = 7;
      }
      cells.push_back(cell);
      cfgs.push_back(cfg);
    }
  }
  const std::vector<RunResult> results = run_batch(cfgs);

  TextTable table({"offered [x cap]", "link", "goodput [fps]", "p50 [ms]",
                   "p99 [ms]", "shed [%]", "retx", "outcome"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TransportReport& t = results[i].transport;
    const double shed_pct =
        t.frames_offered == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(t.frames_delivered) /
                                 static_cast<double>(t.frames_offered));
    table.row()
        .add(cells[i].mult, 1)
        .add(cells[i].label)
        .add(t.goodput_fps, 2)
        .add(t.p50_latency_ms, 2)
        .add(t.p99_latency_ms, 2)
        .add(shed_pct, 1)
        .add(static_cast<double>(t.retransmissions), 0)
        .add(results[i].fault.failed ? "FAILED: " + results[i].fault.failure
                                     : "completed");
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "below capacity the feeder queue stays empty and latency is one\n"
      "pipeline traversal; past 1x the bounded queues fill, admission\n"
      "control sheds the stalest frames, and goodput clamps at the render\n"
      "capacity while p99 saturates near the deadline instead of growing\n"
      "with the overload. The lossy column pays retransmissions out of the\n"
      "same capacity, so its goodput cap sits a little lower.\n");

  write_overload_json(cells, cfgs, results, capacity_fps);
  return 0;
}
