// Microbenchmarks of the crash-durability layer: snapshot framing
// (serialize + CRC), frame validation on read, and the atomic
// write-then-rename to disk. The checkpoint interval a user can afford is
// bounded by these costs — a checkpoint is pure host-side I/O with zero
// simulated cost, but real wall-clock spent here throttles sweep
// throughput.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "sccpipe/core/run_snapshot.hpp"
#include "sccpipe/support/snapshot.hpp"

namespace {

using namespace sccpipe;

std::vector<std::uint8_t> blob_of(std::size_t bytes) {
  std::vector<std::uint8_t> b(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    b[i] = static_cast<std::uint8_t>(i * 131u + 7u);
  }
  return b;
}

RunSnapshot sample_snapshot(std::size_t state_bytes) {
  RunSnapshot snap;
  snap.config_fingerprint = 0x0123456789abcdefull;
  snap.frames_delivered = 200;
  snap.sim_now_ns = 1'500'000'000;
  snap.crashes_consumed = 1;
  snap.state = blob_of(state_bytes);
  return snap;
}

// Framing throughput: payload build + header + CRC over the state blob.
// A walkthrough component blob is a few hundred bytes; the larger sizes
// chart how the CRC scales if future PRs checkpoint bulkier state.
void BM_SnapshotSerialize(benchmark::State& state) {
  const RunSnapshot snap =
      sample_snapshot(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_run_snapshot(snap));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SnapshotSerialize)->Arg(256)->Arg(4096)->Arg(65536);

// Validation cost on the resume path: magic/version/length checks plus a
// full-payload CRC before a single field is parsed.
void BM_SnapshotParseValidate(benchmark::State& state) {
  const std::vector<std::uint8_t> framed = serialize_run_snapshot(
      sample_snapshot(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    RunSnapshot out;
    const Status st = parse_run_snapshot(framed, &out);
    benchmark::DoNotOptimize(st.ok());
    benchmark::DoNotOptimize(out.state.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SnapshotParseValidate)->Arg(256)->Arg(4096)->Arg(65536);

// The per-checkpoint disk cost: tmp write + fsync-free rename publish.
void BM_SnapshotAtomicWrite(benchmark::State& state) {
  const std::string path = "/tmp/sccpipe_bench_snapshot.snap";
  const std::vector<std::uint8_t> framed = serialize_run_snapshot(
      sample_snapshot(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    const Status st = snapshot::write_file_atomic(path, framed);
    benchmark::DoNotOptimize(st.ok());
  }
  std::remove(path.c_str());
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SnapshotAtomicWrite)->Arg(256)->Arg(65536);

// Fingerprint of a full run configuration — computed once per run; here
// to keep it honest (it mixes every trajectory-shaping field).
void BM_ConfigFingerprint(benchmark::State& state) {
  RunConfig cfg;
  cfg.fault.core_failures.push_back({5, SimTime::ms(100)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_config_fingerprint(cfg));
  }
}
BENCHMARK(BM_ConfigFingerprint);

}  // namespace

BENCHMARK_MAIN();
