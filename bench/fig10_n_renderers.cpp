// Figure 10 — "Processing time using one renderer per pipeline." The
// sort-first configuration: every pipeline has its own render stage with a
// strip-adjusted frustum. Scales much further than Figure 9 (to ~58 s at 7
// pipelines) but pays for the extra memory accesses of many concurrent
// renderers on the chip (§VI-A).

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Figure 10 — one renderer per pipeline (sort-first), 1..7 pipelines",
      "paper: 235 s at k=1 scaling to ~58 s at k=7; arrangements identical");

  TextTable table({"configuration", "1 pl.", "2 pl.", "3 pl.", "4 pl.",
                   "5 pl.", "6 pl.", "7 pl."});
  SvgPlot plot("Fig. 10 — one renderer per pipeline", "number of pipelines", "time in sec");
  add_sweep_rows(table, {"unordered", Scenario::RendererPerPipeline,
                         Arrangement::Unordered, PlatformKind::Scc,
                         {235, 117, 78, 69, 65, 62, 58}}, 7, &plot);
  add_sweep_rows(table, {"ordered", Scenario::RendererPerPipeline,
                         Arrangement::Ordered, PlatformKind::Scc,
                         {236, 118, 79, 68, 65, 61, 58}}, 7, &plot);
  add_sweep_rows(table, {"flipped", Scenario::RendererPerPipeline,
                         Arrangement::Flipped, PlatformKind::Scc,
                         {236, 117, 79, 68, 65, 61, 59}}, 7, &plot);
  std::printf("%s\n", table.to_string().c_str());
  write_figure(plot, "fig10_n_renderers");

  const double base = run_single_core(World::instance().scene(),
                                      World::instance().trace(), RunConfig{})
                          .total.to_sec();
  RunConfig cfg;
  cfg.scenario = Scenario::RendererPerPipeline;
  cfg.pipelines = 7;
  std::printf("speed-up vs one core at k=7: %.2fx (paper: ~6.9x)\n",
              base / run(cfg).walkthrough.to_sec());
  return 0;
}
