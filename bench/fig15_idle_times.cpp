// Figure 15 — "The wasted time while waiting to receive data from the
// previous pipeline stage." MCPC-renderer configuration with seven
// pipelines; per-stage idle time (median and quartiles over the 400
// frames). Paper: blur waits ~58 ms per frame, scratch ~133 ms, quartiles
// hugging the medians.

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Figure 15 — per-stage idle time, MCPC renderer, 7 pipelines",
      "paper: blur ~58 ms, scratch ~133 ms; quartiles close to the median");

  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 7;
  const RunResult r = run(cfg);

  const double paper_median[] = {/*sepia*/ -1, /*blur*/ 58, /*scratch*/ 133,
                                 /*flicker*/ -1, /*swap*/ -1};
  const StageKind kinds[] = {StageKind::Sepia, StageKind::Blur,
                             StageKind::Scratch, StageKind::Flicker,
                             StageKind::Swap};

  TextTable table({"stage", "q1 [ms]", "median [ms]", "q3 [ms]",
                   "paper median [ms]"});
  for (int i = 0; i < 5; ++i) {
    // Middle pipeline, as representative as any (they are symmetric).
    const StageReport* rep = r.stage(kinds[i], 3);
    table.row()
        .add(stage_name(kinds[i]))
        .add(rep->wait_ms.q1, 1)
        .add(rep->wait_ms.median, 1)
        .add(rep->wait_ms.q3, 1)
        .add(paper_median[i] > 0 ? format_fixed(paper_median[i], 0) : "~");
  }
  std::printf("%s\n", table.to_string().c_str());

  // Accumulated over the walkthrough (paper: "the blur stage waits for 23
  // seconds" over 400 frames).
  const StageReport* blur = r.stage(StageKind::Blur, 3);
  std::printf("blur stage accumulated wait: %.1f s over the walkthrough "
              "(paper: ~23 s)\n",
              blur->wait_ms.median * World::instance().frames() *
                  World::instance().scale() / 1000.0);
  return 0;
}
