// Ablation (beyond the paper) — hypothetical per-core local memory banks.
// §VII wishes for "small local and manageable memory banks per node" like
// the Cell's SPE local stores: messages would land directly at the
// receiver instead of bouncing through its DRAM partition. This bench
// quantifies what the SCC would have gained.

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Ablation — Cell-style local memory banks (hypothetical SCC)",
      "transfers skip the receiver-partition DRAM bounce (§VI-A / §VII)");

  TextTable table({"configuration", "k", "SCC as built [s]",
                   "with local banks [s]", "gain [%]"});
  for (const Scenario s :
       {Scenario::SingleRenderer, Scenario::RendererPerPipeline,
        Scenario::HostRenderer}) {
    for (const int k : {1, 4, 7}) {
      RunConfig base;
      base.scenario = s;
      base.pipelines = k;
      RunConfig banks = base;
      banks.rcce.local_memory_banks = true;
      const double t0 = run_seconds(base);
      const double t1 = run_seconds(banks);
      table.row()
          .add(scenario_name(s))
          .add(k)
          .add(t0, 1)
          .add(t1, 1)
          .add(100.0 * (1.0 - t1 / t0), 1);
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "the gain is largest where hand-offs are frequent relative to stage\n"
      "compute; it bounds what the authors' proposed hardware change could\n"
      "have bought this workload.\n");
  return 0;
}
