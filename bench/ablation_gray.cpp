// Ablation (beyond the paper) — gray-failure tolerance of the macro
// pipeline. The paper's fault story is fail-stop; real many-core parts
// also fail *slow* (a thermally throttled core, a degraded mesh link).
// This harness plants one fail-slow stage core at 1x/2x/4x/8x its normal
// service time and sweeps the mitigation ladder ceiling (off / dvfs /
// migrate / rebalance), reporting walkthrough stretch vs the no-fault
// baseline, detector flags, the actions taken, and the audited frame
// ledger. Rows land in BENCH_gray.json for cross-PR comparison.

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "sccpipe/core/recovery.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

namespace {

struct Cell {
  double slowdown = 1.0;
  GrayPolicy policy = GrayPolicy::Off;
};

void write_gray_json(const std::vector<Cell>& cells,
                     const std::vector<RunResult>& results,
                     double baseline_s, int victim) {
  const char* path = "BENCH_gray.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sccpipe-bench-gray-v1\",\n");
  std::fprintf(f, "  \"tool\": \"ablation_gray\",\n");
  std::fprintf(f, "  \"baseline_s\": %.3f,\n", baseline_s);
  std::fprintf(f, "  \"victim_core\": %d,\n", victim);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GrayReport& g = results[i].gray;
    const double wall = results[i].walkthrough.to_sec();
    std::fprintf(
        f,
        "    {\"slowdown\": %.1f, \"policy\": \"%s\", "
        "\"walkthrough_s\": %.3f, \"stretch\": %.3f, "
        "\"flags\": %d, \"dvfs_boosts\": %d, \"migrations\": %d, "
        "\"rebalances\": %d, \"escalations\": %d, \"frames_drained\": %d, "
        "\"post_mitigation_fps\": %.3f, \"offered\": %llu, "
        "\"delivered\": %llu, \"shed\": %llu, \"completed\": %s}%s\n",
        cells[i].slowdown, gray_policy_name(cells[i].policy), wall,
        baseline_s > 0.0 ? wall / baseline_s : 0.0, g.flags_raised,
        g.dvfs_boosts, g.migrations, g.rebalances, g.escalations,
        g.frames_drained, g.post_mitigation_fps,
        static_cast<unsigned long long>(g.frames_offered),
        static_cast<unsigned long long>(g.frames_delivered),
        static_cast<unsigned long long>(g.frames_shed),
        results[i].fault.failed ? "false" : "true",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] gray record written: %s\n", path);
}

}  // namespace

int main() {
  print_banner(
      "Ablation — gray failures (fail-slow stage core vs mitigation ladder)",
      "EWMA + windowed-quantile detector, dvfs/migrate/rebalance ladder");

  RunConfig base;
  base.scenario = Scenario::HostRenderer;
  base.pipelines = 4;

  // Clean baseline: supplies the deterministic placement (to pick the
  // victim stage core) and the no-fault walkthrough length.
  const RunResult clean = run(base);
  const double baseline_s = clean.walkthrough.to_sec();
  const int victim = clean.placement.pipeline_cores[1][2];
  const SimTime onset = SimTime::ms(clean.walkthrough.to_ms() * 0.25);
  std::printf("no-fault baseline: %.3f s; victim core %d slows at %.3f s\n\n",
              baseline_s, victim, onset.to_sec());

  const std::vector<double> slowdowns = {1.0, 2.0, 4.0, 8.0};
  const std::vector<GrayPolicy> policies = {
      GrayPolicy::Off, GrayPolicy::Dvfs, GrayPolicy::Migrate,
      GrayPolicy::Rebalance};
  std::vector<Cell> cells;
  std::vector<RunConfig> cfgs;
  for (const double slow : slowdowns) {
    for (const GrayPolicy policy : policies) {
      Cell cell;
      cell.slowdown = slow;
      cell.policy = policy;
      RunConfig cfg = base;
      cfg.fault.seed = 7;
      cfg.fault.slow_cores.push_back(SlowCore{victim, slow, onset});
      // Service time is compute + DRAM streaming, so an Nx compute
      // slowdown inflates the sampled span by well under Nx; 1.3x of the
      // pipeline median catches the 4x and 8x cells while leaving the 1x
      // and 2x cells (and every healthy core) untouched.
      cfg.gray.detect_factor = 1.3;
      cfg.gray.detect_windows = 3;
      cfg.gray.policy = policy;
      cells.push_back(cell);
      cfgs.push_back(cfg);
    }
  }
  const std::vector<RunResult> results = run_batch(cfgs);

  TextTable table({"slowdown", "policy", "wall [s]", "stretch", "flags",
                   "actions", "drained", "post-mit fps"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GrayReport& g = results[i].gray;
    const double wall = results[i].walkthrough.to_sec();
    std::string actions;
    if (g.dvfs_boosts > 0) {
      actions += std::to_string(g.dvfs_boosts) + " dvfs";
    }
    if (g.migrations > 0) {
      if (!actions.empty()) actions += ", ";
      actions += std::to_string(g.migrations) + " migrate";
    }
    if (g.rebalances > 0) {
      if (!actions.empty()) actions += ", ";
      actions += std::to_string(g.rebalances) + " rebalance";
    }
    if (actions.empty()) actions.push_back('-');
    table.row()
        .add(cells[i].slowdown, 1)
        .add(gray_policy_name(cells[i].policy))
        .add(wall, 3)
        .add(baseline_s > 0.0 ? wall / baseline_s : 0.0, 3)
        .add(g.flags_raised)
        .add(actions)
        .add(g.frames_drained)
        .add(g.post_mitigation_fps, 2);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "at 1x the plan is inert and the detector must stay silent. The\n"
      "macro pipeline hides a slow stage behind the bottleneck stage, so\n"
      "the wall clock stretches only once the straggler's service time\n"
      "eats through that slack — but the detector flags it long before\n"
      "then, and the ladder restores stage-local service time: a dvfs\n"
      "boost first, then a drain-migration to a healthy spare (the drained\n"
      "column counts in-flight strips re-sent through the rebuilt\n"
      "channels; the ledger above them balances to zero loss).\n");

  write_gray_json(cells, results, baseline_s, victim);
  return 0;
}
