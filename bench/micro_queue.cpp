// Queue-isolation microbench: the 4-ary key heap (sim/simulator.hpp)
// against the reference binary-heap scheduler at controlled pending
// depths. The end-to-end event-churn row of bench/perf_baseline mixes
// queue cost with callback storage cost; this tool pins the *queue* —
// schedule/cancel/dispatch on a population held at N pending — so the
// d-ary layout's depth advantage (log4 vs log2 dependent loads per sift)
// is visible per tier: 1k pending fits in L2, 32k spills to L3, 1M is
// DRAM-resident where the shorter miss chain matters most.
//
// Determinism cross-check: both engines consume the same RNG stream and
// must dispatch and cancel identical event counts (they share the
// (time, rank, seq) dispatch order, so the streams cannot diverge).
//
// Flags:
//   --smoke       reduced tiers/repeats for CI (drops the 1M tier)
//   --check PATH  gate the 32k-tier ratio against the committed
//                 queue_ops_32k row of a perf_baseline record: fail when
//                 the current ratio drops below half the committed one
//
// Single-core container caveat (docs/PERF.md §1.3): both engines are
// single-threaded, so core count does not bias the ratio — only absolute
// ops/s depend on the host.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "queue_bench.hpp"
#include "sccpipe/sim/reference_scheduler.hpp"
#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/support/args.hpp"
#include "sccpipe/support/check.hpp"

using namespace sccpipe;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double median(std::vector<double> v) {
  SCCPIPE_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct Tier {
  std::size_t pending = 0;
  std::uint64_t dispatches = 0;
  double ref_ops_per_sec = 0.0;
  double opt_ops_per_sec = 0.0;
  double ratio() const {
    return ref_ops_per_sec > 0.0 ? opt_ops_per_sec / ref_ops_per_sec : 0.0;
  }
};

Tier run_tier(std::size_t pending, std::uint64_t dispatches, int repeats) {
  // ~2.125 queue ops per dispatched event (1 dispatch, 1 replacement
  // schedule, a cancel + re-arm every 8th); the constant cancels out of
  // the ratio, so report plain dispatches/s scaled by it for context.
  const double ops = 2.125 * static_cast<double>(dispatches);
  std::vector<double> ref_s, opt_s;
  for (int r = 0; r < repeats; ++r) {
    bench::QueueHoldDriver<reference::Scheduler, reference::Scheduler::Handle>
        ref(0x9e3779b9u + pending);
    ref_s.push_back(ref.run(pending, dispatches, [] { return Clock::now(); },
                            seconds_since));
    bench::QueueHoldDriver<Simulator, EventHandle> opt(0x9e3779b9u + pending);
    opt_s.push_back(opt.run(pending, dispatches, [] { return Clock::now(); },
                            seconds_since));
    // The engines share the dispatch order, so the RNG streams — and with
    // them every derived count — must agree exactly.
    SCCPIPE_CHECK(opt.dispatched == ref.dispatched);
    SCCPIPE_CHECK(opt.cancels == ref.cancels);
  }
  return Tier{pending, dispatches, ops / median(ref_s), ops / median(opt_s)};
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("smoke", "reduced tiers/repeats for CI", "false");
  args.add_flag("check", "committed perf_baseline record to gate against", "");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(),
                 args.usage("micro_queue").c_str());
    return 2;
  }
  const bool smoke = args.get_bool("smoke");
  const int repeats = smoke ? 3 : 5;

  std::printf("micro_queue: d-ary key heap vs reference binary heap, "
              "population held at N pending (%s mode)\n\n",
              smoke ? "smoke" : "full");

  std::vector<Tier> tiers;
  tiers.push_back(run_tier(1'000, smoke ? 150'000 : 2'000'000, repeats));
  tiers.push_back(run_tier(32'000, smoke ? 150'000 : 2'000'000, repeats));
  if (!smoke) tiers.push_back(run_tier(1'000'000, 1'000'000, repeats));

  for (const Tier& t : tiers) {
    std::printf("%8zu pending: reference %10.4g ops/s   dary %10.4g ops/s   "
                "%5.2fx\n",
                t.pending, t.ref_ops_per_sec, t.opt_ops_per_sec, t.ratio());
  }

  if (args.has("check") && !args.get("check").empty()) {
    const std::string json = read_file(args.get("check"));
    if (json.empty()) {
      std::fprintf(stderr, "[check] cannot read %s\n",
                   args.get("check").c_str());
      return 1;
    }
    const std::optional<double> want =
        bench::committed_metric_speedup(json, "queue_ops_32k");
    if (!want || *want <= 0.0) {
      std::fprintf(stderr,
                   "[check] no committed queue_ops_32k ratio in %s, "
                   "skipping gate\n",
                   args.get("check").c_str());
      return 0;
    }
    double current = 0.0;
    for (const Tier& t : tiers) {
      if (t.pending == 32'000) current = t.ratio();
    }
    const double floor = *want / 2.0;
    const bool ok = current >= floor;
    std::printf("\n[check] queue_ops_32k committed %.2fx, current %.2fx, "
                "floor %.2fx  %s\n",
                *want, current, floor, ok ? "ok" : "REGRESSION");
    if (!ok) return 1;
  }
  return 0;
}
