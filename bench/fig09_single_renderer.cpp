// Figure 9 — "Processing time using one renderer with different numbers of
// pipelines." One SCC core renders whole frames and feeds 1..7 parallel
// filter pipelines; the configuration saturates quickly because rendering
// is the bottleneck (§VI-A). All three §IV-A arrangements are swept — the
// paper's finding is that they do not matter.

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Figure 9 — one renderer, 1..7 pipelines, all three arrangements",
      "paper: ~207 s at k=1, saturating near ~101 s (render-bound)");

  TextTable table({"configuration", "1 pl.", "2 pl.", "3 pl.", "4 pl.",
                   "5 pl.", "6 pl.", "7 pl."});
  SvgPlot plot("Fig. 9 — one renderer, 1..7 pipelines", "number of pipelines", "time in sec");
  add_sweep_rows(table, {"unordered", Scenario::SingleRenderer,
                         Arrangement::Unordered, PlatformKind::Scc,
                         {207, 107, 102, 102, 102, 101, 101}}, 7, &plot);
  add_sweep_rows(table, {"ordered", Scenario::SingleRenderer,
                         Arrangement::Ordered, PlatformKind::Scc,
                         {208, 108, 104, 103, 102, 101, 101}}, 7, &plot);
  add_sweep_rows(table, {"flipped", Scenario::SingleRenderer,
                         Arrangement::Flipped, PlatformKind::Scc,
                         {208, 107, 102, 102, 102, 101, 101}}, 7, &plot);
  std::printf("%s\n", table.to_string().c_str());
  write_figure(plot, "fig09_single_renderer");

  // Speed-ups relative to the one-core baseline, as quoted in §VI-A.
  const double base = run_single_core(World::instance().scene(),
                                      World::instance().trace(), RunConfig{})
                          .total.to_sec();
  RunConfig cfg;
  cfg.scenario = Scenario::SingleRenderer;
  cfg.pipelines = 1;
  const double one = run(cfg).walkthrough.to_sec();
  cfg.pipelines = 7;
  const double best = run(cfg).walkthrough.to_sec();
  std::printf("speed-up vs one core: k=1 %.2fx, k=7 %.2fx "
              "(paper: ~1.7-1.8x and ~2.0x w.r.t. one pipeline / ~3.4x one core)\n",
              base / one, base / best);
  return 0;
}
