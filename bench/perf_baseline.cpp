// Perf baseline for the allocation-free hot paths: measures the optimised
// event engine and pixel kernels against the compiled-in reference
// transcriptions (sim/reference_scheduler.hpp, filters/reference.hpp,
// render/reference.hpp) and writes BENCH_perf_baseline.json.
//
// The committed numbers are speedup RATIOS (optimised vs reference on the
// same machine, same build, same workload), so they are comparable across
// machines; the absolute throughputs and the reduced end-to-end walkthrough
// time are recorded for context only. The event-churn row also records heap
// allocations per event on both sides (counted via a replaced operator
// new): the wall-clock ratio depends on how cheap the host allocator's fast
// path is, while the allocation count is the structural property this
// baseline exists to pin down — see docs/PERF.md for the analysis.
// `--check FILE` is the CI regression gate: it fails when any current ratio
// drops below half the committed one (a >2x regression), and deliberately
// never gates on absolute numbers.
//
// Flags:
//   --out PATH     write the JSON record here (default BENCH_perf_baseline.json)
//   --smoke        reduced repeats/workloads for CI (ratios are noisier but
//                  the 2x gate has plenty of margin)
//   --check PATH   compare against a committed record; exit 1 on regression

#include <algorithm>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "queue_bench.hpp"
#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/core/workload.hpp"
#include "sccpipe/filters/filters.hpp"
#include "sccpipe/filters/reference.hpp"
#include "sccpipe/noc/partition.hpp"
#include "sccpipe/render/rasterizer.hpp"
#include "sccpipe/render/reference.hpp"
#include "sccpipe/scc/chip.hpp"
#include "sccpipe/sim/parallel_sim.hpp"
#include "sccpipe/sim/reference_scheduler.hpp"
#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/support/args.hpp"
#include "sccpipe/support/check.hpp"
#include "sccpipe/support/rng.hpp"

using namespace sccpipe;

// Counted global operator new: lets the bench report heap allocations per
// event for each engine. The optimised hot path's headline property is
// *zero* steady-state allocations (also asserted by the SimulatorStats
// test); the counter makes the before/after visible in the JSON record
// even on allocators whose fast path is cheap in wall-clock terms.
static std::uint64_t g_heap_allocs = 0;

void* operator new(std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t align) {
  ++g_heap_allocs;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (n + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double median(std::vector<double> v) {
  SCCPIPE_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// One measured comparison: reference vs optimised throughput in the same
/// unit, plus their ratio (the number the CI gate tracks).
struct Metric {
  std::string name;
  std::string unit;
  double reference = 0.0;
  double optimized = 0.0;
  /// Heap allocations per event during the measured run (event_churn only;
  /// negative = not measured for this metric).
  double ref_allocs_per_event = -1.0;
  double opt_allocs_per_event = -1.0;
  double speedup() const { return reference > 0.0 ? optimized / reference : 0.0; }
};

// ------------------------------------------------------------ event churn
//
// The transports' retry/timeout shape: every work event arms a watchdog
// timeout that the work's completion cancels, so the engine sees two
// schedules, one cancel and one dispatch per useful event — the same churn
// the RCCE retry layer and the host links generate. Both engines run the
// identical workload; only callback storage and heap layout differ.
//
// The driver is deliberately thin (integer ids, handles, no payload), so
// the measured time is the engines' schedule/cancel/dispatch machinery,
// not common workload cost that would dilute the ratio.

template <class Engine, class Handle>
struct ChurnDriver {
  Engine eng;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t target = 0;

  void fire(std::uint32_t id) {
    ++fired;
    if (fired >= target) return;
    const Handle timeout =
        eng.schedule_after(SimTime::us(50), [this, id] { fire(id ^ 1u); });
    eng.schedule_after(SimTime::ns((id * 7 + 3) % 41 + 1),
                       [this, timeout, id] {
                         if (eng.cancel(timeout)) ++cancelled;
                         fire(id + 1);
                       });
  }

  /// Seeds \p chains independent chains and runs the engine dry; returns
  /// wall seconds including the scheduling work.
  double run(std::uint64_t fires, int chains) {
    target = fires;
    const auto t0 = Clock::now();
    for (int c = 0; c < chains; ++c) {
      eng.schedule_after(SimTime::ns(c + 1),
                         [this, c] { fire(static_cast<std::uint32_t>(c)); });
    }
    eng.run();
    return seconds_since(t0);
  }
};

Metric bench_event_churn(std::uint64_t fires, int chains, int repeats) {
  // ~4 engine operations per fired event (2 schedules, 1 cancel,
  // 1 dispatch); the constant cancels out of the ratio.
  const double ops = 4.0 * static_cast<double>(fires);
  std::vector<double> ref_s, opt_s;
  std::uint64_t ref_allocs = 0, opt_allocs = 0;
  for (int r = 0; r < repeats; ++r) {
    ChurnDriver<reference::Scheduler, reference::Scheduler::Handle> ref;
    std::uint64_t a0 = g_heap_allocs;
    ref_s.push_back(ref.run(fires, chains));
    ref_allocs = g_heap_allocs - a0;
    SCCPIPE_CHECK(ref.fired >= fires);
    ChurnDriver<Simulator, EventHandle> opt;
    a0 = g_heap_allocs;
    opt_s.push_back(opt.run(fires, chains));
    opt_allocs = g_heap_allocs - a0;
    SCCPIPE_CHECK(opt.fired >= fires);
    SCCPIPE_CHECK(opt.cancelled == ref.cancelled);
  }
  Metric m{"event_churn", "ops/s", ops / median(ref_s), ops / median(opt_s)};
  m.ref_allocs_per_event = static_cast<double>(ref_allocs) / fires;
  m.opt_allocs_per_event = static_cast<double>(opt_allocs) / fires;
  return m;
}

// ------------------------------------------------------------- queue ops
//
// Hold-pattern churn at a controlled pending depth (bench/queue_bench.hpp):
// the pending population holds at N throughout the measured window, so each
// tier probes the heaps at a fixed sift depth instead of the mixed depths
// the event-churn row sees. 1k pending is cache-resident (pure layout
// ratio); 32k spills the engines' working sets differently and is the tier
// bench/micro_queue gates CI against. micro_queue has the full tier sweep
// including a DRAM-resident 1M run.

Metric bench_queue_ops(const char* name, std::size_t pending,
                       std::uint64_t dispatches, int repeats) {
  // ~2.125 queue ops per dispatched event (1 dispatch, 1 replacement
  // schedule, a cancel + re-arm every 8th); the constant cancels out of
  // the ratio.
  const double ops = 2.125 * static_cast<double>(dispatches);
  std::vector<double> ref_s, opt_s;
  for (int r = 0; r < repeats; ++r) {
    bench::QueueHoldDriver<reference::Scheduler, reference::Scheduler::Handle>
        ref(0x9e3779b9u + pending);
    ref_s.push_back(ref.run(pending, dispatches, [] { return Clock::now(); },
                            seconds_since));
    bench::QueueHoldDriver<Simulator, EventHandle> opt(0x9e3779b9u + pending);
    opt_s.push_back(opt.run(pending, dispatches, [] { return Clock::now(); },
                            seconds_since));
    // Shared (time, rank, seq) dispatch order means the RNG streams — and
    // every derived count — must agree exactly between the engines.
    SCCPIPE_CHECK(opt.dispatched == ref.dispatched);
    SCCPIPE_CHECK(opt.cancels == ref.cancels);
  }
  return Metric{name, "ops/s", ops / median(ref_s), ops / median(opt_s)};
}

// ------------------------------------------------------------ pixel kernels

Image random_image(Rng& rng, int side) {
  Image img(side, side);
  std::uint8_t* d = img.data();
  for (std::size_t i = 0; i < img.byte_size(); ++i) {
    d[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  return img;
}

template <class FnOpt, class FnRef>
Metric bench_filter(const char* name, int side, int repeats, int passes,
                    FnOpt&& optimized, FnRef&& ref) {
  Rng rng{0xbe9c4001};
  const Image base = random_image(rng, side);
  const double mpix = static_cast<double>(side) * side * passes / 1e6;
  std::vector<double> ref_s, opt_s;
  for (int r = 0; r < repeats; ++r) {
    Image img = base;
    auto t0 = Clock::now();
    for (int p = 0; p < passes; ++p) ref(img);
    ref_s.push_back(seconds_since(t0));
    img = base;
    t0 = Clock::now();
    for (int p = 0; p < passes; ++p) optimized(img);
    opt_s.push_back(seconds_since(t0));
  }
  return Metric{name, "Mpix/s", mpix / median(ref_s), mpix / median(opt_s)};
}

Metric bench_raster(int side, int triangles, int repeats) {
  Rng rng{0x7a57e002};
  std::vector<Vec4> verts;
  std::vector<Color> cols;
  for (int i = 0; i < triangles * 3; ++i) {
    const float w = static_cast<float>(rng.uniform(0.2, 4.0));
    verts.push_back(Vec4{static_cast<float>(rng.uniform(-1.2, 1.2)) * w,
                         static_cast<float>(rng.uniform(-1.2, 1.2)) * w,
                         static_cast<float>(rng.uniform(-1.0, 1.0)) * w, w});
    if (i % 3 == 0) {
      cols.push_back(Color{static_cast<std::uint8_t>(rng.below(256)),
                           static_cast<std::uint8_t>(rng.below(256)),
                           static_cast<std::uint8_t>(rng.below(256)), 255});
    }
  }
  std::vector<double> ref_s, opt_s;
  std::uint64_t tested = 0;
  for (int r = 0; r < repeats; ++r) {
    Framebuffer fb(side, side);
    fb.clear();
    RasterStats st;
    const Viewport vp = Viewport::full(fb);
    auto t0 = Clock::now();
    for (int t = 0; t < triangles; ++t) {
      reference::draw_triangle_clip(fb, vp, verts[t * 3], verts[t * 3 + 1],
                                    verts[t * 3 + 2], cols[t], &st);
    }
    ref_s.push_back(seconds_since(t0));
    tested = st.pixels_tested;

    fb.clear();
    st = RasterStats{};
    t0 = Clock::now();
    for (int t = 0; t < triangles; ++t) {
      draw_triangle_clip(fb, vp, verts[t * 3], verts[t * 3 + 1],
                         verts[t * 3 + 2], cols[t], &st);
    }
    opt_s.push_back(seconds_since(t0));
    SCCPIPE_CHECK(st.pixels_tested == tested);
  }
  const double mpix = static_cast<double>(tested) / 1e6;
  return Metric{"raster", "Mpix tested/s", mpix / median(ref_s),
                mpix / median(opt_s)};
}

// ----------------------------------------------------- sim_jobs scaling sweep
//
// Intra-run parallelism (PR 6): the same workload executed at --sim-jobs
// 1/2/4/8 on the partitioned engine. Two workloads:
//
//   * churn — the event-churn driver sharded over 8 independent regions
//     with a huge lookahead, so the whole run fits in one barrier window.
//     This is the engine's best case and measures raw multi-queue dispatch
//     scaling with zero synchronisation cost.
//   * e2e — the reduced walkthrough at each sim_jobs value. The
//     walkthrough is region-native (noc/fabric.hpp): chip work executes
//     at the region owning its tile, so partitioned rows genuinely cross
//     regions and drain in many coalescible barrier windows.
//
// Every row is CHECK-verified against the jobs=1 run of the same workload
// (identical event counts / results), so the sweep doubles as a release-
// build determinism probe. The e2e jobs=4 row additionally feeds the
// window-overhead gate: windows per simulated millisecond must not regress
// more than 2x against the committed record (a cheap canary for lookahead
// or coalescing regressions that byte-identity cannot see).

struct SimJobsRow {
  std::string workload;
  int jobs = 0;
  int regions = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double speedup_vs_jobs1 = 0.0;
  std::uint64_t windows = 0;
  std::uint64_t coalesced_windows = 0;
  std::uint64_t cross_region_events = 0;
  double sim_ms = 0.0;  ///< simulated span the windows amortised over

  double windows_per_sim_ms() const {
    return sim_ms > 0.0 ? static_cast<double>(windows) / sim_ms : 0.0;
  }
};

/// Per-region churn chain for the partitioned engine: same
/// schedule/cancel/dispatch shape as ChurnDriver, confined to one region's
/// Simulator so regions stay independent (lookahead never binds).
struct RegionChurn {
  Simulator* sim = nullptr;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t target = 0;

  void fire(std::uint32_t id) {
    ++fired;
    if (fired >= target) return;
    const EventHandle timeout =
        sim->schedule_after(SimTime::us(50), [this, id] { fire(id ^ 1u); });
    sim->schedule_after(SimTime::ns((id * 7 + 3) % 41 + 1),
                        [this, timeout, id] {
                          if (sim->cancel(timeout)) ++cancelled;
                          fire(id + 1);
                        });
  }
};

std::vector<SimJobsRow> bench_sim_jobs_churn(std::uint64_t fires_per_region,
                                             int chains_per_region,
                                             int repeats) {
  const int kRegions = 8;
  std::vector<SimJobsRow> rows;
  std::uint64_t events_at_1 = 0;
  double wall_at_1 = 0.0;
  for (const int jobs : {1, 2, 4, 8}) {
    std::vector<double> secs;
    std::uint64_t events = 0;
    ParallelSimStats stats;
    SimTime sim_end = SimTime::zero();
    for (int r = 0; r < repeats; ++r) {
      // Huge lookahead: the snapshot bound of every region is its peers'
      // first event plus ~an hour, so the run completes in one window.
      ParallelSimulator eng(kRegions, jobs, SimTime::ms(3'600'000.0));
      std::vector<RegionChurn> drivers(kRegions);
      for (int g = 0; g < kRegions; ++g) {
        drivers[static_cast<std::size_t>(g)].sim = &eng.region(g);
        drivers[static_cast<std::size_t>(g)].target = fires_per_region;
      }
      const auto t0 = Clock::now();
      for (int g = 0; g < kRegions; ++g) {
        RegionChurn& d = drivers[static_cast<std::size_t>(g)];
        for (int c = 0; c < chains_per_region; ++c) {
          d.sim->schedule_after(SimTime::ns(c + 1), [&d, c] {
            d.fire(static_cast<std::uint32_t>(c));
          });
        }
      }
      sim_end = eng.run();
      secs.push_back(seconds_since(t0));
      for (const RegionChurn& d : drivers) SCCPIPE_CHECK(d.fired >= fires_per_region);
      events = eng.dispatched();
      stats = eng.stats();
    }
    const double med = median(secs);
    SimJobsRow row{"churn", jobs, kRegions, med * 1e3, events,
                   static_cast<double>(events) / med, 1.0, stats.windows,
                   stats.coalesced_windows, stats.cross_region_events,
                   sim_end.to_ms()};
    if (jobs == 1) {
      events_at_1 = events;
      wall_at_1 = med;
    } else {
      // Determinism probe: the sharded workload must dispatch the exact
      // same event population at every worker count.
      SCCPIPE_CHECK(events == events_at_1);
      row.speedup_vs_jobs1 = wall_at_1 / med;
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<SimJobsRow> bench_sim_jobs_e2e(int frames, int size, int pipelines,
                                           int repeats) {
  const SceneBundle scene(CityParams{}, CameraConfig{}, size, frames);
  const WorkloadTrace trace = WorkloadTrace::build(scene, pipelines);
  std::vector<SimJobsRow> rows;
  std::uint64_t events_at_1 = 0;
  double wall_at_1 = 0.0;
  for (const int jobs : {1, 2, 4, 8}) {
    RunConfig cfg;
    cfg.scenario = Scenario::HostRenderer;
    cfg.pipelines = pipelines;
    cfg.sim_jobs = jobs;
    std::vector<double> secs;
    RunResult res;
    for (int r = 0; r < repeats; ++r) {
      const auto t0 = Clock::now();
      res = run_walkthrough(scene, trace, cfg);
      secs.push_back(seconds_since(t0));
      SCCPIPE_CHECK(!res.fault.failed);
    }
    const double med = median(secs);
    // Honesty check on the recorded region count: it must be what the
    // partition map actually produces for this platform and job request,
    // not an assumed regions == jobs (the map clamps to the column count).
    const MeshPartition part(ChipConfig::scc().mesh_layout,
                             std::max(1, jobs));
    SCCPIPE_CHECK(res.parallel_sim.regions == part.regions());
    SimJobsRow row{"e2e", jobs, part.regions(), med * 1e3,
                   res.events_dispatched,
                   static_cast<double>(res.events_dispatched) / med, 1.0,
                   res.parallel_sim.windows,
                   res.parallel_sim.coalesced_windows,
                   res.parallel_sim.cross_region_events,
                   res.walkthrough.to_ms()};
    if (jobs == 1) {
      events_at_1 = res.events_dispatched;
      wall_at_1 = med;
    } else {
      // The byte-identity contract, release-build flavour.
      SCCPIPE_CHECK(res.events_dispatched == events_at_1);
      row.speedup_vs_jobs1 = wall_at_1 / med;
    }
    rows.push_back(row);
  }
  return rows;
}

// ------------------------------------------------------- end-to-end context

struct E2e {
  std::string name;
  int frames = 0;
  int size = 0;
  int pipelines = 0;
  bool functional = false;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
};

/// Two reduced walkthroughs on one shared scene: the plain run is what the
/// figure/table harnesses execute (wall time ~= event engine throughput),
/// the functional run carries real pixel payloads through the pipeline so
/// the filter kernels show up end to end.
std::vector<E2e> bench_e2e(int frames, int size, int pipelines, int repeats) {
  const SceneBundle scene(CityParams{}, CameraConfig{}, size, frames);
  const WorkloadTrace trace = WorkloadTrace::build(scene, pipelines);
  std::vector<E2e> rows;
  for (const bool functional : {false, true}) {
    RunConfig cfg;
    cfg.scenario = Scenario::HostRenderer;
    cfg.pipelines = pipelines;
    cfg.functional = functional;
    std::vector<double> secs;
    std::uint64_t events = 0;
    for (int r = 0; r < repeats; ++r) {
      const auto t0 = Clock::now();
      const RunResult res = run_walkthrough(scene, trace, cfg);
      secs.push_back(seconds_since(t0));
      events = res.events_dispatched;
      SCCPIPE_CHECK(!res.fault.failed);
    }
    const double med = median(secs);
    rows.push_back(E2e{functional ? "e2e_functional" : "e2e", frames, size,
                       pipelines, functional, med * 1e3,
                       static_cast<double>(events) / med, events});
  }
  return rows;
}

// ---------------------------------------------------------------- JSON I/O

void write_json(const std::string& path, const std::vector<Metric>& metrics,
                const std::vector<E2e>& e2e,
                const std::vector<SimJobsRow>& sim_jobs, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sccpipe-bench-perf-baseline-v2\",\n");
  std::fprintf(f, "  \"tool\": \"perf_baseline\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"nproc\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "  \"note\": \"speedup = optimized/reference on one machine; the CI gate compares ratios only\",\n");
  std::fprintf(f, "  \"metrics\": [\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Metric& m = metrics[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"unit\": \"%s\", "
                 "\"reference\": %.4g, \"optimized\": %.4g, "
                 "\"speedup\": %.3f",
                 m.name.c_str(), m.unit.c_str(), m.reference, m.optimized,
                 m.speedup());
    if (m.ref_allocs_per_event >= 0.0) {
      std::fprintf(f,
                   ", \"ref_allocs_per_event\": %.2f, "
                   "\"opt_allocs_per_event\": %.5f",
                   m.ref_allocs_per_event, m.opt_allocs_per_event);
    }
    std::fprintf(f, "}%s\n", i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"e2e\": [\n");
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const E2e& e = e2e[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"frames\": %d, \"size\": %d, "
                 "\"pipelines\": %d, \"functional\": %s, \"wall_ms\": %.1f, "
                 "\"events_dispatched\": %llu, \"events_per_sec\": %.4g}%s\n",
                 e.name.c_str(), e.frames, e.size, e.pipelines,
                 e.functional ? "true" : "false", e.wall_ms,
                 static_cast<unsigned long long>(e.events), e.events_per_sec,
                 i + 1 < e2e.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"sim_jobs\": [\n");
  for (std::size_t i = 0; i < sim_jobs.size(); ++i) {
    const SimJobsRow& s = sim_jobs[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"jobs\": %d, \"regions\": %d, "
                 "\"wall_ms\": %.1f, \"events_dispatched\": %llu, "
                 "\"events_per_sec\": %.4g, \"speedup_vs_jobs1\": %.2f, "
                 "\"windows\": %llu, \"coalesced_windows\": %llu, "
                 "\"cross_region_events\": %llu, \"sim_ms\": %.3f, "
                 "\"windows_per_sim_ms\": %.4g}%s\n",
                 s.workload.c_str(), s.jobs, s.regions, s.wall_ms,
                 static_cast<unsigned long long>(s.events), s.events_per_sec,
                 s.speedup_vs_jobs1,
                 static_cast<unsigned long long>(s.windows),
                 static_cast<unsigned long long>(s.coalesced_windows),
                 static_cast<unsigned long long>(s.cross_region_events),
                 s.sim_ms, s.windows_per_sim_ms(),
                 i + 1 < sim_jobs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] perf record written: %s\n", path.c_str());
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Pull `"windows_per_sim_ms": <num>` out of the committed e2e sim_jobs
/// row for \p jobs (the format is ours, so a scan is enough).
std::optional<double> committed_window_overhead(const std::string& json,
                                                int jobs) {
  const std::string tag =
      "\"workload\": \"e2e\", \"jobs\": " + std::to_string(jobs) + ",";
  std::size_t at = json.find(tag);
  if (at == std::string::npos) return std::nullopt;
  const std::string key = "\"windows_per_sim_ms\": ";
  at = json.find(key, at);
  if (at == std::string::npos) return std::nullopt;
  return std::strtod(json.c_str() + at + key.size(), nullptr);
}

/// The CI regression gate: every committed ratio must still be at least
/// half-reached by the current build, and the partitioned walkthrough's
/// window overhead (barrier windows per simulated millisecond at the
/// jobs=4 e2e row) must not have grown past 2x the committed value —
/// byte-identity cannot see a lookahead or coalescing regression, but
/// this ratio does. Returns the number of failures.
int check_against(const std::string& path, const std::vector<Metric>& now,
                  const std::vector<SimJobsRow>& sim_jobs) {
  const std::string json = read_file(path);
  if (json.empty()) {
    std::fprintf(stderr, "[bench] cannot read committed baseline %s\n",
                 path.c_str());
    return 1;
  }
  int failures = 0;
  for (const Metric& m : now) {
    const std::optional<double> want =
        bench::committed_metric_speedup(json, m.name);
    if (!want) {
      std::fprintf(stderr, "[bench] %-12s no committed ratio, skipping\n",
                   m.name.c_str());
      continue;
    }
    const double floor = *want / 2.0;
    const bool ok = m.speedup() >= floor;
    std::printf("[check] %-12s committed %.2fx, current %.2fx, floor %.2fx  %s\n",
                m.name.c_str(), *want, m.speedup(), floor,
                ok ? "ok" : "REGRESSION");
    if (!ok) ++failures;
  }
  for (const SimJobsRow& s : sim_jobs) {
    if (s.workload != "e2e" || s.jobs != 4) continue;
    const std::optional<double> want = committed_window_overhead(json, s.jobs);
    if (!want || *want <= 0.0) {
      std::fprintf(stderr,
                   "[bench] window-overhead: no committed windows_per_sim_ms, "
                   "skipping\n");
      continue;
    }
    const double ceiling = *want * 2.0;
    const bool ok = s.windows_per_sim_ms() <= ceiling;
    std::printf("[check] %-12s committed %.3g w/ms, current %.3g w/ms, "
                "ceiling %.3g  %s\n",
                "win-overhead", *want, s.windows_per_sim_ms(), ceiling,
                ok ? "ok" : "REGRESSION");
    if (!ok) ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("out", "output JSON path", "BENCH_perf_baseline.json");
  args.add_flag("smoke", "reduced workloads/repeats for CI", "false");
  args.add_flag("check", "committed baseline to gate against", "");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(),
                 args.usage("perf_baseline").c_str());
    return 2;
  }
  const bool smoke = args.get_bool("smoke");

  // Workload sizes: full mode is for the committed record (stable medians),
  // smoke mode for CI wall-clock budget. Chains = simultaneously pending
  // chains, matching a multi-pipeline run's live event population.
  const std::uint64_t churn_fires = smoke ? 60'000 : 400'000;
  const int churn_chains = 256;
  const int repeats = smoke ? 3 : 7;
  const int img_side = 400;  // the paper's frame size
  const int filter_passes = smoke ? 2 : 6;

  std::printf("perf_baseline: optimised hot paths vs reference transcriptions"
              " (%s mode)\n\n", smoke ? "smoke" : "full");

  const std::uint64_t queue_dispatches = smoke ? 100'000 : 1'000'000;

  std::vector<Metric> metrics;
  metrics.push_back(bench_event_churn(churn_fires, churn_chains, repeats));
  metrics.push_back(
      bench_queue_ops("queue_ops_1k", 1'000, queue_dispatches, repeats));
  metrics.push_back(
      bench_queue_ops("queue_ops_32k", 32'000, queue_dispatches, repeats));
  metrics.push_back(bench_filter(
      "blur", img_side, repeats, filter_passes,
      [](Image& img) { apply_blur(img); },
      [](Image& img) { reference::apply_blur(img); }));
  metrics.push_back(bench_filter(
      "sepia", img_side, repeats, filter_passes,
      [](Image& img) { apply_sepia(img); },
      [](Image& img) { reference::apply_sepia(img); }));
  metrics.push_back(bench_raster(img_side, smoke ? 120 : 400, repeats));

  for (const Metric& m : metrics) {
    std::printf("%-12s reference %10.4g %-14s optimized %10.4g %-14s %6.2fx\n",
                m.name.c_str(), m.reference, m.unit.c_str(), m.optimized,
                m.unit.c_str(), m.speedup());
    if (m.ref_allocs_per_event >= 0.0) {
      std::printf("%-12s reference %10.2f allocs/event   optimized %10.5f "
                  "allocs/event\n",
                  "", m.ref_allocs_per_event, m.opt_allocs_per_event);
    }
  }

  const std::vector<E2e> e2e =
      bench_e2e(smoke ? 10 : 60, 240, 4, smoke ? 2 : 5);
  for (const E2e& e : e2e) {
    std::printf("\n%s walkthrough (%d frames, %dx%d, k=%d): %.1f ms wall, "
                "%llu events, %.3g events/s\n",
                e.name.c_str(), e.frames, e.size, e.size, e.pipelines,
                e.wall_ms, static_cast<unsigned long long>(e.events),
                e.events_per_sec);
  }

  std::vector<SimJobsRow> sim_jobs =
      bench_sim_jobs_churn(smoke ? 30'000 : 200'000, 32, smoke ? 2 : 5);
  {
    const std::vector<SimJobsRow> e2e_rows =
        bench_sim_jobs_e2e(smoke ? 10 : 60, 240, 4, smoke ? 2 : 5);
    sim_jobs.insert(sim_jobs.end(), e2e_rows.begin(), e2e_rows.end());
  }
  std::printf("\nsim_jobs sweep (partitioned engine, results checked"
              " identical to jobs=1):\n");
  for (const SimJobsRow& s : sim_jobs) {
    std::printf("  %-6s jobs %d over %d regions: %8.1f ms, %.3g events/s, "
                "%.2fx vs jobs=1, %llu window(s) (+%llu coalesced), "
                "%llu cross-region, %.3g windows/sim-ms\n",
                s.workload.c_str(), s.jobs, s.regions, s.wall_ms,
                s.events_per_sec, s.speedup_vs_jobs1,
                static_cast<unsigned long long>(s.windows),
                static_cast<unsigned long long>(s.coalesced_windows),
                static_cast<unsigned long long>(s.cross_region_events),
                s.windows_per_sim_ms());
  }

  const std::string out = args.get("out");
  if (out != "none") write_json(out, metrics, e2e, sim_jobs, smoke);

  if (args.has("check") && !args.get("check").empty()) {
    const int failures = check_against(args.get("check"), metrics, sim_jobs);
    if (failures > 0) {
      std::fprintf(stderr, "[bench] %d metric(s) regressed >2x vs %s\n",
                   failures, args.get("check").c_str());
      return 1;
    }
    std::printf("[check] all ratios within 2x of the committed baseline\n");
  }
  return 0;
}
