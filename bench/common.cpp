#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "sccpipe/exec/executor.hpp"

namespace sccpipe::bench {

World::World() {
  frames_ = 400;
  if (const char* env = std::getenv("SCCPIPE_BENCH_FRAMES")) {
    const int v = std::atoi(env);
    if (v > 0) frames_ = v;
  }
  std::fprintf(stderr, "[bench] building scene + workload trace (%d frames)...\n",
               frames_);
  scene_ = std::make_unique<SceneBundle>(CityParams{}, CameraConfig{}, 400,
                                         frames_);
  // The estimation pass is the only expensive part of a harness; cache it
  // on disk so the second and later binaries start instantly.
  std::string cache = ".sccpipe_workload.cache";
  if (const char* env = std::getenv("SCCPIPE_TRACE_CACHE")) cache = env;
  trace_ = std::make_unique<WorkloadTrace>(WorkloadTrace::build_cached(
      *scene_, 8, cache, exec::trace_runner()));
  std::fprintf(stderr, "[bench] scene ready: %zu triangles, octree %zu nodes\n",
               scene_->mesh().size(), scene_->octree().node_count());
}

const World& World::instance() {
  static World world;
  return world;
}

RunResult run(const RunConfig& cfg) {
  const World& w = World::instance();
  return run_walkthrough(w.scene(), w.trace(), cfg);
}

std::vector<RunResult> run_batch(const std::vector<RunConfig>& cfgs) {
  // Force the build on this thread so the workers share a finished,
  // immutable world (and its disk-cache write happens exactly once).
  const World& w = World::instance();
  return exec::run_grid(w.scene(), w.trace(), cfgs);
}

double run_seconds(const RunConfig& cfg) {
  return run(cfg).walkthrough.to_sec() * World::instance().scale();
}

std::vector<double> run_batch_seconds(const std::vector<RunConfig>& cfgs) {
  const double scale = World::instance().scale();
  std::vector<double> secs;
  secs.reserve(cfgs.size());
  for (const RunResult& r : run_batch(cfgs)) {
    secs.push_back(r.walkthrough.to_sec() * scale);
  }
  return secs;
}

void print_banner(const std::string& experiment, const std::string& summary) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", summary.c_str());
  std::printf("(absolute numbers come from a calibrated model of the SCC; the\n");
  std::printf(" shapes — who wins, where curves saturate — are the result)\n");
  std::printf("================================================================\n\n");
}

void add_sweep_rows(TextTable& table, const SweepSpec& spec, int max_k,
                    SvgPlot* plot) {
  // One colour per sweep: the simulated (solid) and published (dashed)
  // curves of a configuration share it.
  static constexpr const char* kColors[] = {"#2f6fb2", "#c23b3b", "#3d9950",
                                            "#8b5cb5", "#c28a2f", "#3ba6a6"};
  const char* color =
      plot ? kColors[(plot->series_count() / 2) % 6] : "";

  PlotSeries sim_series;
  sim_series.color = color;
  sim_series.label = spec.label + " (sim)";
  table.row().add(spec.label + " (sim)");
  std::vector<RunConfig> cfgs;
  for (int k = 1; k <= max_k; ++k) {
    RunConfig cfg;
    cfg.scenario = spec.scenario;
    cfg.arrangement = spec.arrangement;
    cfg.platform = spec.platform;
    cfg.pipelines = k;
    cfgs.push_back(cfg);
  }
  const std::vector<double> secs = run_batch_seconds(cfgs);
  for (int k = 1; k <= max_k; ++k) {
    const double s = secs[static_cast<std::size_t>(k - 1)];
    table.add(s, 1);
    sim_series.x.push_back(k);
    sim_series.y.push_back(s);
  }
  if (plot) plot->add_series(sim_series);
  if (!spec.paper_seconds.empty()) {
    PlotSeries paper_series;
    paper_series.label = spec.label + " (paper)";
    paper_series.dashed = true;
    paper_series.markers = false;
    table.row().add(spec.label + " (paper)");
    for (int k = 0; k < max_k; ++k) {
      if (k < static_cast<int>(spec.paper_seconds.size())) {
        const double v = spec.paper_seconds[static_cast<std::size_t>(k)];
        table.add(v, 0);
        paper_series.x.push_back(k + 1);
        paper_series.y.push_back(v);
      } else {
        table.add("-");
      }
    }
    if (plot && !paper_series.x.empty()) {
      paper_series.color = color;  // pair with the simulated curve
      plot->add_series(paper_series);
    }
  }
}

void write_figure(const SvgPlot& plot, const std::string& name) {
  std::string dir = "figures";
  if (const char* env = std::getenv("SCCPIPE_FIGURE_DIR")) dir = env;
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name + ".svg";
  plot.write(path);
  std::printf("figure written: %s\n", path.c_str());
}

}  // namespace sccpipe::bench
