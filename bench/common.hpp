#pragma once

/// \file common.hpp
/// Shared infrastructure for the figure/table reproduction harnesses: the
/// paper's workload (400-frame walkthrough of the city at 400x400) built
/// once per binary, plus table helpers that print measured values next to
/// the numbers published in the paper.
///
/// Environment knobs:
///   SCCPIPE_BENCH_FRAMES — walkthrough length (default 400, the paper's).
///     Results are scaled back to 400 frames so reduced runs stay
///     comparable.

#include <memory>
#include <string>
#include <vector>

#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/support/svg_plot.hpp"
#include "sccpipe/support/table.hpp"

namespace sccpipe::bench {

/// The paper's workload, built once and shared read-only within a binary.
/// instance() is safe to call from executor worker threads (C++ magic
/// statics serialise the build), but run_batch() forces the build on the
/// calling thread first so workers only ever see the immutable world.
class World {
 public:
  static const World& instance();

  const SceneBundle& scene() const { return *scene_; }
  const WorkloadTrace& trace() const { return *trace_; }
  int frames() const { return frames_; }
  /// Multiplier that scales a measured duration to the paper's 400-frame
  /// walkthrough (1.0 for full-length runs).
  double scale() const { return 400.0 / frames_; }

 private:
  World();
  int frames_;
  std::unique_ptr<SceneBundle> scene_;
  std::unique_ptr<WorkloadTrace> trace_;
};

/// Run one timed walkthrough on the shared world and return the result.
RunResult run(const RunConfig& cfg);

/// Run a batch of independent walkthroughs on the shared world across
/// exec::default_jobs() worker threads (SCCPIPE_JOBS overrides). Results
/// come back in config order, bit-identical to running serially — see
/// exec/executor.hpp for the determinism guarantee.
std::vector<RunResult> run_batch(const std::vector<RunConfig>& cfgs);

/// Walkthrough seconds, scaled to 400 frames.
double run_seconds(const RunConfig& cfg);

/// run_batch, reduced to scaled walkthrough seconds per config.
std::vector<double> run_batch_seconds(const std::vector<RunConfig>& cfgs);

/// Standard header block for a harness: which figure/table, what the paper
/// reports, what we print.
void print_banner(const std::string& experiment, const std::string& summary);

/// Append a "k=1..7" sweep row: label, then one duration per pipeline
/// count, next to the paper's row for comparison.
struct SweepSpec {
  std::string label;
  Scenario scenario;
  Arrangement arrangement = Arrangement::Ordered;
  PlatformKind platform = PlatformKind::Scc;
  std::vector<double> paper_seconds;  // may be empty
};

/// Run the sweep for k = 1..max_k and add "<label> (sim)" and, when paper
/// numbers exist, "<label> (paper)" rows to the table. When \p plot is
/// given, the simulated series (solid) and the paper's (dashed) are added
/// to it as well.
void add_sweep_rows(TextTable& table, const SweepSpec& spec, int max_k = 7,
                    SvgPlot* plot = nullptr);

/// Write an SVG figure to $SCCPIPE_FIGURE_DIR (default "figures/") and
/// print where it went.
void write_figure(const SvgPlot& plot, const std::string& name);

}  // namespace sccpipe::bench
