// Figure 17 — "...results in significant higher power consumption." Power
// traces of the three Fig. 16 DVFS configurations. Paper: ~40 W at
// all-533, ~44 W with the blur tile at 800 MHz / 1.3 V (+4-5 W), and ~39 W
// when the post-blur stages drop to 400 MHz / 0.7 V — about 1 W below the
// all-533 level while keeping the blur speed-up.

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Figure 17 — power of the blur-DVFS configurations (single pipeline)",
      "paper: ~40 W baseline; +4-5 W with blur@800; ~-5 W with the 400 MHz tail");

  struct Config {
    const char* label;
    int blur_mhz;
    int tail_mhz;
  };
  const Config configs[] = {
      {"all stages 533 MHz", 0, 0},
      {"blur stage 800 MHz", 800, 0},
      {"533 / 800 / 400 MHz", 800, 400},
  };

  double watts[3] = {};
  TextTable table({"configuration", "mean [W]", "energy [J]", "time [s]"});
  int i = 0;
  for (const Config& c : configs) {
    RunConfig cfg;
    cfg.scenario = Scenario::HostRenderer;
    cfg.pipelines = 1;
    cfg.isolate_blur_tile = true;
    cfg.blur_mhz = c.blur_mhz;
    cfg.tail_mhz = c.tail_mhz;
    const RunResult r = run(cfg);
    watts[i++] = r.mean_chip_watts;
    table.row()
        .add(c.label)
        .add(r.mean_chip_watts, 1)
        .add(r.chip_energy_joules * World::instance().scale(), 0)
        .add(r.walkthrough.to_sec() * World::instance().scale(), 1);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("blur@800 adds %.1f W over baseline (paper: +4-5 W)\n",
              watts[1] - watts[0]);
  std::printf("the 400 MHz tail brings it %.1f W below baseline "
              "(paper: ~1 W below)\n",
              watts[0] - watts[2]);

  // Sampled traces of all three configurations (the figure's time axis).
  SvgPlot plot("Fig. 17 — power with a fast blur stage", "time in sec",
               "power in watt");
  plot.y_from_zero(false);
  for (const Config& c : configs) {
    RunConfig cfg;
    cfg.scenario = Scenario::HostRenderer;
    cfg.pipelines = 1;
    cfg.isolate_blur_tile = true;
    cfg.blur_mhz = c.blur_mhz;
    cfg.tail_mhz = c.tail_mhz;
    const RunResult r = run(cfg);
    PlotSeries series;
    series.label = c.label;
    series.markers = false;
    const SimTime end = min(r.walkthrough, SimTime::sec(100.0));
    for (SimTime t = SimTime::zero(); t + SimTime::sec(5) <= end;
         t += SimTime::sec(5)) {
      series.x.push_back((t + SimTime::sec(2.5)).to_sec());
      series.y.push_back(r.power_trace.integrate(t, t + SimTime::sec(5)) /
                         5.0);
    }
    plot.add_series(std::move(series));
  }
  write_figure(plot, "fig17_blur_power");
  return 0;
}
