// Figure 11 — "Rendering time with MCPC for rendering." The heterogeneous
// configuration: the MCPC's Xeon renders, the SCC only filters; a connect
// stage on the chip receives the frames over UDP and distributes strips.
// Best overall (paper: ~51 s at 5 pipelines), flattening beyond four
// pipelines because the connect stage's UDP receive becomes the bottleneck.

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Figure 11 — MCPC renders, SCC filters (heterogeneous), 1..7 pipelines",
      "paper: ~231 s at k=1 down to ~51-54 s, flat beyond 4 pipelines");

  TextTable table({"configuration", "1 pl.", "2 pl.", "3 pl.", "4 pl.",
                   "5 pl.", "6 pl.", "7 pl."});
  SvgPlot plot("Fig. 11 — MCPC renders, SCC filters", "number of pipelines", "time in sec");
  add_sweep_rows(table, {"unordered", Scenario::HostRenderer,
                         Arrangement::Unordered, PlatformKind::Scc,
                         {231, 113, 72, 54, 54, 55, 54}}, 7, &plot);
  add_sweep_rows(table, {"ordered", Scenario::HostRenderer,
                         Arrangement::Ordered, PlatformKind::Scc,
                         {231, 112, 70, 54, 53, 55, 54}}, 7, &plot);
  add_sweep_rows(table, {"flipped", Scenario::HostRenderer,
                         Arrangement::Flipped, PlatformKind::Scc,
                         {232, 113, 72, 54, 51, 54, 54}}, 7, &plot);
  std::printf("%s\n", table.to_string().c_str());
  write_figure(plot, "fig11_mcpc_renderer");

  // The connect stage's budget: why the curve flattens (§VI-A).
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 7;
  const RunResult r = run(cfg);
  const StageReport* connect = r.stage(StageKind::Connect);
  const StageReport* blur = r.stage(StageKind::Blur, 0);
  std::printf(
      "at k=7: connect busy %.0f ms/frame vs blur busy %.0f ms/frame — the\n"
      "UDP receive on a 533 MHz P54C caps the heterogeneous configuration\n",
      connect->busy_ms / World::instance().frames(),
      blur->busy_ms / World::instance().frames());
  return 0;
}
