// Figure 12 — "Rendering time with increasing image sizes." A single
// pipeline with the MCPC rendering; the image side length sweeps 50..400
// (10 KB .. 640 KB frames). The paper's finding: no cache cliff when the
// strip exceeds the 256 KiB L2 — the filters' reuse windows are a few rows
// and always fit — and a slight curvature from per-datagram overheads on
// the segmented transfers.

#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "sccpipe/exec/executor.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Figure 12 — single pipeline, MCPC renderer, image side 50..400",
      "paper: smooth, near-quadratic-in-side curve, no L2-size jump; 236 s at 400");

  const int frames = World::instance().frames();
  const double scale = World::instance().scale();

  TextTable table({"side [px]", "frame [KB]", "time [s]", "s per 100KB"});
  SvgPlot plot("Fig. 12 — time vs image size (single pipeline, MCPC render)",
               "image side length [px]", "time in sec");
  PlotSeries series;
  series.label = "sim";
  const std::vector<int> sides = {50, 100, 150, 200, 250, 300, 350, 400};
  // Each size needs its own scene + trace (same city and path, different
  // frame resolution), so the whole build+run chain parallelises per side;
  // results come back in side order regardless of the job count.
  const std::vector<double> times = exec::parallel_map<double>(
      0, sides.size(), [&](std::size_t i) {
        SceneBundle scene(CityParams{}, CameraConfig{}, sides[i], frames);
        const WorkloadTrace trace = WorkloadTrace::build(scene, 1);
        RunConfig cfg;
        cfg.scenario = Scenario::HostRenderer;
        cfg.pipelines = 1;
        return run_walkthrough(scene, trace, cfg).walkthrough.to_sec() * scale;
      });
  for (std::size_t i = 0; i < sides.size(); ++i) {
    const int side = sides[i];
    const double secs = times[i];
    const double kb = side * side * 4.0 / 1024.0;
    table.row()
        .add(side)
        .add(kb, 0)
        .add(secs, 1)
        .add(secs / (kb / 100.0), 2);
    series.x.push_back(side);
    series.y.push_back(secs);
  }
  plot.add_series(std::move(series));
  std::printf("%s\n", table.to_string().c_str());
  write_figure(plot, "fig12_image_sizes");
  std::printf(
      "the 'per 100KB' column is flat-ish with a mild rise: data volume, not\n"
      "cache capacity, governs the time (paper: \"no significant jump ... if\n"
      "the cores' cache size is exceeded\")\n");
  return 0;
}
