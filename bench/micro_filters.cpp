// Google-benchmark microbenchmarks of the functional filter kernels — the
// real pixel code the examples run (the timed model prices the P54C, these
// measure this machine).

#include <benchmark/benchmark.h>

#include "sccpipe/filters/filters.hpp"
#include "sccpipe/support/rng.hpp"

namespace {

using namespace sccpipe;

Image make_image(int side, std::uint64_t seed) {
  Image img(side, side);
  Rng rng{seed};
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      img.set(x, y, Color{static_cast<std::uint8_t>(rng.below(256)),
                          static_cast<std::uint8_t>(rng.below(256)),
                          static_cast<std::uint8_t>(rng.below(256)), 255});
    }
  }
  return img;
}

void BM_Sepia(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  Image img = make_image(side, 1);
  for (auto _ : state) {
    apply_sepia(img);
    benchmark::DoNotOptimize(img.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.byte_size()));
}
BENCHMARK(BM_Sepia)->Arg(100)->Arg(400);

void BM_Blur(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  Image img = make_image(side, 2);
  for (auto _ : state) {
    apply_blur(img);
    benchmark::DoNotOptimize(img.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.byte_size()));
}
BENCHMARK(BM_Blur)->Arg(100)->Arg(400);

void BM_Scratch(benchmark::State& state) {
  Image img = make_image(400, 3);
  Rng rng{7};
  for (auto _ : state) {
    apply_scratches(img, ScratchParams::draw(rng, 400));
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_Scratch);

void BM_Flicker(benchmark::State& state) {
  Image img = make_image(400, 4);
  Rng rng{8};
  for (auto _ : state) {
    apply_flicker(img, FlickerParams::draw(rng));
    benchmark::DoNotOptimize(img.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.byte_size()));
}
BENCHMARK(BM_Flicker);

void BM_Vflip(benchmark::State& state) {
  Image img = make_image(400, 5);
  for (auto _ : state) {
    apply_vflip(img);
    benchmark::DoNotOptimize(img.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.byte_size()));
}
BENCHMARK(BM_Vflip);

void BM_StripSplitAssemble(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Image img = make_image(400, 6);
  for (auto _ : state) {
    Image out(400, 400);
    for (const StripRange& s : divide_rows(400, k)) {
      out.paste(img.strip(s), s.y0);
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StripSplitAssemble)->Arg(2)->Arg(7);

}  // namespace

BENCHMARK_MAIN();
