// Figure 16 — "Increasing the frequency of the core computing the blur
// stage improves the overall performance significantly." Single pipeline,
// MCPC renderer, blur isolated on its own tile (Fig. 18): 533 MHz
// everywhere vs blur at 800 MHz vs blur at 800 MHz with the post-blur
// stages dropped to 400 MHz. Paper: 236 s -> 174 s -> ~175 s.

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Figure 16 — accelerating the blur stage via per-tile DVFS",
      "paper: 236 s all-533; 174 s blur@800; ~175 s blur@800 + tail@400");

  struct Config {
    const char* label;
    int blur_mhz;
    int tail_mhz;
    double paper_seconds;
  };
  const Config configs[] = {
      {"all stages 533 MHz", 0, 0, 236.0},
      {"blur 800 MHz", 800, 0, 174.0},
      {"blur 800, tail 400 MHz", 800, 400, 175.0},
  };

  TextTable table({"configuration", "sim [s]", "paper [s]", "mean [W]"});
  double base_s = 0.0, fast_s = 0.0;
  for (const Config& c : configs) {
    RunConfig cfg;
    cfg.scenario = Scenario::HostRenderer;
    cfg.pipelines = 1;
    cfg.isolate_blur_tile = true;
    cfg.blur_mhz = c.blur_mhz;
    cfg.tail_mhz = c.tail_mhz;
    const RunResult r = run(cfg);
    const double secs = r.walkthrough.to_sec() * World::instance().scale();
    if (c.blur_mhz == 0) base_s = secs;
    if (c.blur_mhz == 800 && c.tail_mhz == 0) fast_s = secs;
    table.row()
        .add(c.label)
        .add(secs, 1)
        .add(c.paper_seconds, 0)
        .add(r.mean_chip_watts, 1);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "improvement from the 1.5x blur clock: %.0f%% (paper: ~26%%; well below\n"
      "50%% because the blur's DRAM streaming does not scale with the core\n"
      "clock — the compute/memory split of the cost model)\n",
      100.0 * (1.0 - fast_s / base_s));
  return 0;
}
