// Figure 8 — "Overall stage running time using one SCC core."
// The whole pipeline runs sequentially on one core; the paper reports a
// ~382 s total, ~94 s for the render stage alone, and ~104 s for render
// plus transfer (§VI-A). Blur is the most expensive filter stage.

#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner("Figure 8 — per-stage time, whole pipeline on one SCC core",
               "paper: total ~382 s; render-only ~94 s; render+transfer ~104 s");
  const double scale = World::instance().scale();
  const RunConfig cfg;  // defaults; scenario irrelevant for the baseline

  const SingleCoreBreakdown full = run_single_core(
      World::instance().scene(), World::instance().trace(), cfg);

  TextTable table({"stage", "time [s]", "share [%]"});
  for (const auto& [kind, t] : full.per_stage) {
    table.row()
        .add(stage_name(kind))
        .add(t.to_sec() * scale, 1)
        .add(100.0 * (t / full.total), 1);
  }
  table.row().add("TOTAL").add(full.total.to_sec() * scale, 1).add(100.0, 1);
  std::printf("%s\n", table.to_string().c_str());

  const SingleCoreBreakdown render_transfer = run_single_core(
      World::instance().scene(), World::instance().trace(), cfg,
      /*include_filters=*/false, /*include_transfer=*/true);
  const SingleCoreBreakdown render_only = run_single_core(
      World::instance().scene(), World::instance().trace(), cfg,
      /*include_filters=*/false, /*include_transfer=*/false);

  TextTable variants({"variant", "sim [s]", "paper [s]"});
  variants.row().add("full pipeline").add(full.total.to_sec() * scale, 1).add(382.0, 0);
  variants.row()
      .add("render + transfer only")
      .add(render_transfer.total.to_sec() * scale, 1)
      .add(104.0, 0);
  variants.row()
      .add("render only")
      .add(render_only.total.to_sec() * scale, 1)
      .add(94.0, 0);
  std::printf("%s\n", variants.to_string().c_str());
  return 0;
}
