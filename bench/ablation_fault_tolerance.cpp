// Ablation (beyond the paper) — fault tolerance of the macro pipeline.
// The paper's RCCE transfers assume a lossless mesh; this harness injects
// deterministic message loss on the RCCE path (sim/fault.hpp) and gives
// the transport a timeout/retry/backoff budget, then sweeps the drop rate
// to show what reliability costs: each lost payload burns a detection
// timeout plus a full protocol round, so walkthrough time grows with the
// loss rate long before any transfer actually fails.

#include <cstdio>
#include <vector>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner(
      "Ablation — fault tolerance (message loss vs walkthrough time)",
      "deterministic drops + RCCE retry/backoff (grammar: docs/MODEL.md)");

  RunConfig base;
  base.scenario = Scenario::HostRenderer;
  base.pipelines = 4;
  base.fault.seed = 7;
  base.rcce.retry.max_attempts = 12;
  base.rcce.retry.timeout = SimTime::ms(5);
  base.rcce.retry.backoff = SimTime::ms(1);

  TextTable table({"rcce drop rate", "walkthrough [s]", "slowdown [%]",
                   "drops", "retransmissions", "outcome"});
  const double scale = World::instance().scale();
  const std::vector<double> rates = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};
  // The drop-rate sweep is one batch through the parallel executor — the
  // deterministic fault schedule only depends on each config's own seed.
  std::vector<RunConfig> cfgs;
  for (const double rate : rates) {
    RunConfig cfg = base;
    cfg.fault.rcce_drop_rate = rate;
    cfgs.push_back(cfg);
  }
  const std::vector<RunResult> results = run_batch(cfgs);
  double t0 = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const RunResult& r = results[i];
    const double t = r.walkthrough.to_sec() * scale;
    if (rates[i] == 0.0) t0 = t;
    table.row()
        .add(rates[i], 2)
        .add(t, 2)
        .add(t0 > 0.0 ? 100.0 * (t / t0 - 1.0) : 0.0, 1)
        .add(static_cast<double>(r.fault.rcce_drops), 0)
        .add(static_cast<double>(r.fault.rcce_retransmissions), 0)
        .add(r.fault.failed ? "FAILED: " + r.fault.failure : "completed");
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "every drop costs its detection timeout plus a repeated protocol\n"
      "round (sender overhead, partition read, mesh crossing), so the\n"
      "slowdown grows faster than the raw loss rate; the retry budget\n"
      "(12 attempts here) keeps even the 20%% column completing.\n");
  return 0;
}
