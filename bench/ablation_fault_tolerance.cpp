// Ablation (beyond the paper) — fault tolerance of the macro pipeline.
// The paper's RCCE transfers assume a lossless mesh; this harness injects
// deterministic message loss on the RCCE path (sim/fault.hpp) and gives
// the transport a timeout/retry/backoff budget, then sweeps the drop rate
// to show what reliability costs: each lost payload burns a detection
// timeout plus a full protocol round, so walkthrough time grows with the
// loss rate long before any transfer actually fails.
//
// Part two sweeps fail-stop core deaths (0-4 failed cores x failure time):
// the supervisor detects each silence by heartbeat, remaps the dead stage
// onto a spare core and replays the checkpointed frames, so the cost of
// self-healing shows up as throughput degradation rather than a hang. The
// rows land in BENCH_fault_recovery.json for cross-PR comparison.

#include <cstdio>
#include <vector>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

namespace {

void write_recovery_json(const std::vector<RunConfig>& cfgs,
                         const std::vector<RunResult>& results,
                         double clean_sec, double scale) {
  const char* path = "BENCH_fault_recovery.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sccpipe-bench-fault-recovery-v1\",\n");
  std::fprintf(f, "  \"tool\": \"ablation_fault_tolerance\",\n");
  std::fprintf(f, "  \"clean_walkthrough_s\": %.3f,\n", clean_sec);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const double t = r.walkthrough.to_sec() * scale;
    std::fprintf(
        f,
        "    {\"failed_cores\": %zu, \"fail_at_s\": %.3f, "
        "\"walkthrough_s\": %.3f, \"slowdown_pct\": %.2f, "
        "\"failures_detected\": %llu, \"frames_replayed\": %llu, "
        "\"frames_lost\": %llu, \"spares_used\": %d, "
        "\"max_detect_ms\": %.3f, \"post_failure_fps\": %.2f, "
        "\"completed\": %s}%s\n",
        cfgs[i].fault.core_failures.size(),
        cfgs[i].fault.core_failures.empty()
            ? 0.0
            : cfgs[i].fault.core_failures.front().at.to_sec(),
        t, clean_sec > 0.0 ? 100.0 * (t / clean_sec - 1.0) : 0.0,
        static_cast<unsigned long long>(r.recovery.failures_detected),
        static_cast<unsigned long long>(r.recovery.frames_replayed),
        static_cast<unsigned long long>(r.recovery.frames_lost),
        r.recovery.spares_used, r.recovery.max_detection_latency_ms,
        r.recovery.post_failure_fps, r.fault.failed ? "false" : "true",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] recovery record written: %s\n", path);
}

}  // namespace

int main() {
  print_banner(
      "Ablation — fault tolerance (message loss vs walkthrough time)",
      "deterministic drops + RCCE retry/backoff (grammar: docs/MODEL.md)");

  RunConfig base;
  base.scenario = Scenario::HostRenderer;
  base.pipelines = 4;
  base.fault.seed = 7;
  base.rcce.retry.max_attempts = 12;
  base.rcce.retry.timeout = SimTime::ms(5);
  base.rcce.retry.backoff = SimTime::ms(1);

  TextTable table({"rcce drop rate", "walkthrough [s]", "slowdown [%]",
                   "drops", "retransmissions", "outcome"});
  const double scale = World::instance().scale();
  const std::vector<double> rates = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};
  // The drop-rate sweep is one batch through the parallel executor — the
  // deterministic fault schedule only depends on each config's own seed.
  std::vector<RunConfig> cfgs;
  for (const double rate : rates) {
    RunConfig cfg = base;
    cfg.fault.rcce_drop_rate = rate;
    cfgs.push_back(cfg);
  }
  const std::vector<RunResult> results = run_batch(cfgs);
  double t0 = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const RunResult& r = results[i];
    const double t = r.walkthrough.to_sec() * scale;
    if (rates[i] == 0.0) t0 = t;
    table.row()
        .add(rates[i], 2)
        .add(t, 2)
        .add(t0 > 0.0 ? 100.0 * (t / t0 - 1.0) : 0.0, 1)
        .add(static_cast<double>(r.fault.rcce_drops), 0)
        .add(static_cast<double>(r.fault.rcce_retransmissions), 0)
        .add(r.fault.failed ? "FAILED: " + r.fault.failure : "completed");
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "every drop costs its detection timeout plus a repeated protocol\n"
      "round (sender overhead, partition read, mesh crossing), so the\n"
      "slowdown grows faster than the raw loss rate; the retry budget\n"
      "(12 attempts here) keeps even the 20%% column completing.\n");

  // ------------------------------------------------ core-failure sweep
  std::printf(
      "\nCore failures (fail-stop, heartbeat detection, remap + replay)\n");
  RunConfig rbase;
  rbase.scenario = Scenario::HostRenderer;
  rbase.pipelines = 4;
  rbase.fault.seed = 7;
  const RunResult clean = run(rbase);
  const double clean_sec = clean.walkthrough.to_sec() * scale;
  // One victim stage core per pipeline, spread across the filter chain.
  std::vector<CoreId> victims;
  for (std::size_t p = 0; p < 4; ++p) {
    victims.push_back(clean.placement.pipeline_cores[p][(p + 1) % 5]);
  }

  std::vector<RunConfig> rcfgs;
  for (const double frac : {0.25, 0.6}) {
    for (int n = 0; n <= 4; ++n) {
      RunConfig cfg = rbase;
      for (int i = 0; i < n; ++i) {
        // Stagger the deaths slightly so each failure is detected and
        // healed on its own rather than as one simultaneous burst.
        cfg.fault.core_failures.push_back(
            {victims[static_cast<std::size_t>(i)],
             SimTime::ms(clean.walkthrough.to_ms() * frac * (1.0 + 0.05 * i))});
      }
      rcfgs.push_back(cfg);
    }
  }
  const std::vector<RunResult> rresults = run_batch(rcfgs);

  TextTable rtable({"failed cores", "fail at [s]", "walkthrough [s]",
                    "slowdown [%]", "detected", "replayed", "lost", "spares",
                    "post-fail fps", "outcome"});
  for (std::size_t i = 0; i < rcfgs.size(); ++i) {
    const RunResult& r = rresults[i];
    const double t = r.walkthrough.to_sec() * scale;
    rtable.row()
        .add(static_cast<double>(rcfgs[i].fault.core_failures.size()), 0)
        .add(rcfgs[i].fault.core_failures.empty()
                 ? 0.0
                 : rcfgs[i].fault.core_failures.front().at.to_sec(),
             2)
        .add(t, 2)
        .add(clean_sec > 0.0 ? 100.0 * (t / clean_sec - 1.0) : 0.0, 1)
        .add(static_cast<double>(r.recovery.failures_detected), 0)
        .add(static_cast<double>(r.recovery.frames_replayed), 0)
        .add(static_cast<double>(r.recovery.frames_lost), 0)
        .add(static_cast<double>(r.recovery.spares_used), 0)
        .add(r.recovery.post_failure_fps, 1)
        .add(r.fault.failed ? "FAILED: " + r.fault.failure : "completed");
  }
  std::printf("%s\n", rtable.to_string().c_str());
  std::printf(
      "each death costs its detection deadline, the checkpoint re-reads\n"
      "and the replayed strips; with spares on the chip the pipeline count\n"
      "never shrinks, so throughput dips only while the replacement core\n"
      "drains the backlog.\n");
  write_recovery_json(rcfgs, rresults, clean_sec, scale);
  return 0;
}
