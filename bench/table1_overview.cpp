// Table I — "Overview of the results." The full 12-row matrix: three SCC
// renderer configurations x three arrangements, plus the three Mogon HPC
// configurations, each for 1..7 pipelines. This is the paper's headline
// result table; the harness prints simulated and published values
// interleaved and a per-row mean relative error.

#include <cmath>
#include <cstdio>

#include "common.hpp"

using namespace sccpipe;
using namespace sccpipe::bench;

int main() {
  print_banner("Table I — overview of all results (seconds, 1..7 pipelines)",
               "12 configurations; published values interleaved as (paper)");

  struct Row {
    SweepSpec spec;
  };
  const std::vector<SweepSpec> rows = {
      {"1 rend., unordered", Scenario::SingleRenderer, Arrangement::Unordered,
       PlatformKind::Scc, {207, 107, 102, 102, 102, 101, 101}},
      {"1 rend., ordered", Scenario::SingleRenderer, Arrangement::Ordered,
       PlatformKind::Scc, {208, 108, 104, 103, 102, 101, 101}},
      {"1 rend., flipped", Scenario::SingleRenderer, Arrangement::Flipped,
       PlatformKind::Scc, {208, 107, 102, 102, 102, 101, 101}},
      {"n rend., unordered", Scenario::RendererPerPipeline,
       Arrangement::Unordered, PlatformKind::Scc, {235, 117, 78, 69, 65, 62, 58}},
      {"n rend., ordered", Scenario::RendererPerPipeline, Arrangement::Ordered,
       PlatformKind::Scc, {236, 118, 79, 68, 65, 61, 58}},
      {"n rend., flipped", Scenario::RendererPerPipeline, Arrangement::Flipped,
       PlatformKind::Scc, {236, 117, 79, 68, 65, 61, 59}},
      {"MCPC, unordered", Scenario::HostRenderer, Arrangement::Unordered,
       PlatformKind::Scc, {231, 113, 72, 54, 54, 55, 54}},
      {"MCPC, ordered", Scenario::HostRenderer, Arrangement::Ordered,
       PlatformKind::Scc, {231, 112, 70, 54, 53, 55, 54}},
      {"MCPC, flipped", Scenario::HostRenderer, Arrangement::Flipped,
       PlatformKind::Scc, {232, 113, 72, 54, 51, 54, 54}},
      {"HPC, external rend.", Scenario::HostRenderer, Arrangement::Ordered,
       PlatformKind::Cluster, {32, 24, 20, 20, 19, 20, 18}},
      {"HPC, single rend.", Scenario::SingleRenderer, Arrangement::Ordered,
       PlatformKind::Cluster, {26, 14, 10, 7, 6, 5, 4}},
      {"HPC, parallel rend.", Scenario::RendererPerPipeline,
       Arrangement::Ordered, PlatformKind::Cluster, {25, 14, 10, 8, 6, 5, 4}},
  };

  TextTable table({"configuration", "1 pl.", "2 pl.", "3 pl.", "4 pl.",
                   "5 pl.", "6 pl.", "7 pl.", "err"});
  double worst_err = 0.0;
  std::string worst_row;
  for (const SweepSpec& spec : rows) {
    table.row().add(spec.label + " (sim)");
    double err_sum = 0.0;
    std::vector<double> sim;
    for (int k = 1; k <= 7; ++k) {
      RunConfig cfg;
      cfg.scenario = spec.scenario;
      cfg.arrangement = spec.arrangement;
      cfg.platform = spec.platform;
      cfg.pipelines = k;
      const double secs = run_seconds(cfg);
      sim.push_back(secs);
      table.add(secs, 1);
      err_sum += std::fabs(secs - spec.paper_seconds[static_cast<std::size_t>(k - 1)]) /
                 spec.paper_seconds[static_cast<std::size_t>(k - 1)];
    }
    const double mean_err = 100.0 * err_sum / 7.0;
    table.add(format_fixed(mean_err, 0) + "%");
    if (mean_err > worst_err) {
      worst_err = mean_err;
      worst_row = spec.label;
    }

    table.row().add(spec.label + " (paper)");
    for (const double v : spec.paper_seconds) table.add(v, 0);
    table.add("");
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("worst mean relative error: %.0f%% (%s)\n", worst_err,
              worst_row.c_str());
  std::printf(
      "key orderings to check: (1) '1 rend.' saturates, 'n rend.' keeps\n"
      "scaling; (2) MCPC <= n rend. for k >= 3; (3) HPC rows are several\n"
      "times faster; (4) arrangements within each block are near-identical.\n");
  return 0;
}
